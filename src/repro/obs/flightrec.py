"""Black-box flight recorder: fixed-cost binary ring buffers + crash dumps.

Production engines keep an always-on event journal that survives crashes.
This module provides one: every :class:`~repro.core.engine.ParulelEngine`
owns a :class:`FlightRecorder` (default-enabled, ``--no-flight-recorder``
to opt out) holding one bounded ring per process — the engine writes cycle
boundaries, phase durations, per-rule firings, redaction verdicts,
conflict-set churn, checkpoint writes and fault/ladder transitions into
its own ring, while each match worker writes rule-level lifecycle records
into a ``multiprocessing.shared_memory`` ring the *parent* created and
keeps mapped, so the records survive a worker SIGKILL.

Records are fixed 48-byte packed structs (see :data:`RECORD`). The writer
publishes a monotonically increasing sequence number in the ring header
*after* each record write; the decoder cross-checks the per-slot sequence
against the expected value, so torn writes (a writer killed mid-record)
are detected and skipped rather than decoded as garbage. When the ring
wraps, the oldest records are evicted — the journal is a sliding window,
never an unbounded log.

Segment lifecycle reuses the columnar WM store's machinery: names embed
the owner pid (``pfr<pid:08x>p<hex>``) in the same token format
:func:`repro.wm.columnar.parse_owner_pid` understands, so ``parulel
janitor`` reclaims orphaned recorder segments exactly like orphaned WM
segments, and a pid-guarded :func:`weakref.finalize` unlinks them when the
owning recorder is garbage collected without an explicit ``close()``.

On any abnormal exit the engine calls :meth:`FlightRecorder.dump`, which
writes a self-contained ``*.blackbox`` file: a JSON header (reason,
config, seed material, best-effort git state, and the rule/string
manifest needed to decode numeric codes) followed by the raw bytes of
every ring. :mod:`repro.obs.blackbox` decodes these into merged causal
timelines, skew analytics and recording diffs.
"""

from __future__ import annotations

import json
import os
import secrets
import struct
import sys
import tempfile
import threading
import time
import weakref
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.wm.columnar import _cleanup_segments, _Seg, parse_owner_pid

__all__ = [
    "BLACKBOX_MAGIC",
    "EV_ATTACH",
    "EV_CHECKPOINT",
    "EV_CHURN",
    "EV_CYCLE",
    "EV_DUMP",
    "EV_FAULT",
    "EV_FIRE",
    "EV_HALT",
    "EV_MATCH_REPLY",
    "EV_MATCH_REQ",
    "EV_PHASE",
    "EV_RACE",
    "EV_REDACT",
    "EV_REPLAY",
    "EV_RULE_BEGIN",
    "EV_RULE_END",
    "EV_WORKER_EXIT",
    "EV_WORKER_START",
    "EV_VECTOR_SCAN",
    "FLIGHT_PREFIX",
    "KIND_NAMES",
    "PHASE_CODES",
    "PHASE_NAMES",
    "DEATH_KINDS",
    "FlightRecorder",
    "FlightRing",
    "default_blackbox_path",
    "flight_owner_pid",
]

# -- record / header layout ---------------------------------------------------

#: One packed event record: seq u64, ts_ns u64 (``time.perf_counter_ns`` —
#: one monotonic base shared by parent and forked workers, so merged
#: timelines interleave correctly), payload a/b i64, cycle u32, kind u16,
#: code u16 (rule id, phase id or interned string id depending on kind),
#: site i16, 6 pad bytes.
RECORD = struct.Struct("<QQqqIHHh6x")
RECORD_SIZE = RECORD.size  # 48

#: Ring header: magic, version, capacity (records), site i32, owner pid,
#: published seq u64, padded to 64 bytes so records start cache-aligned.
HEADER = struct.Struct("<8sIIiIQ32x")
HEADER_SIZE = HEADER.size  # 64
_RING_MAGIC = b"PARULFR1"
_SEQ_OFFSET = 24  # offset of the u64 published-seq field inside HEADER
_SEQ = struct.Struct("<Q")

RING_VERSION = 1
DEFAULT_CAPACITY = 4096
MIN_CAPACITY = 16

# -- event kinds --------------------------------------------------------------

EV_CYCLE = 1  # cycle boundary: a=fired, b=conflict-set size
EV_PHASE = 2  # phase complete: code=phase id, a=duration ns
EV_FIRE = 3  # one firing evaluated: code=rule id, a=eval ns
EV_REDACT = 4  # redaction verdict: a=candidates, b=redacted
EV_CHURN = 5  # conflict-set churn: a=instantiations, b=candidates
EV_CHECKPOINT = 6  # checkpoint written: code 0=full, 1=delta
EV_FAULT = 7  # fault / supervisor / ladder event: code=interned kind, a=site
EV_RACE = 8  # commutativity race: code=rule id, a=other rule id
EV_REPLAY = 9  # sanitizer shadow replay: a=pairs replayed
EV_HALT = 10  # engine halted
EV_DUMP = 11  # blackbox dump about to be written: code=interned reason
EV_WORKER_START = 20  # worker process up: a=pid
EV_WORKER_EXIT = 21  # worker saw "stop"
EV_MATCH_REQ = 22  # match request received: a=deltas shipped (-1: shm refresh)
EV_RULE_BEGIN = 23  # about to match one rule: code=rule id
EV_RULE_END = 24  # rule matched: code=rule id, a=instantiations found
EV_MATCH_REPLY = 25  # reply sent: a=summaries returned
EV_ATTACH = 26  # worker attached to a shared store/ring
EV_VECTOR_SCAN = 27  # vectorized scan batch: a=rows scanned, b=WMEs materialized, code=fallback probes (clamped)

KIND_NAMES: Dict[int, str] = {
    EV_CYCLE: "cycle",
    EV_PHASE: "phase",
    EV_FIRE: "fire",
    EV_REDACT: "redact",
    EV_CHURN: "churn",
    EV_CHECKPOINT: "checkpoint",
    EV_FAULT: "fault",
    EV_RACE: "race",
    EV_REPLAY: "replay",
    EV_HALT: "halt",
    EV_DUMP: "dump",
    EV_WORKER_START: "worker-start",
    EV_WORKER_EXIT: "worker-exit",
    EV_MATCH_REQ: "match-req",
    EV_RULE_BEGIN: "rule-begin",
    EV_RULE_END: "rule-end",
    EV_MATCH_REPLY: "match-reply",
    EV_ATTACH: "attach",
    EV_VECTOR_SCAN: "vector-scan",
}

#: Engine phase ids used as ``code`` on :data:`EV_PHASE` records.
PHASE_NAMES: Tuple[str, ...] = ("match", "redact", "act", "merge")
PHASE_CODES: Dict[str, int] = {name: i for i, name in enumerate(PHASE_NAMES)}

#: Fault kinds that mean a worker died (or was declared dead) — seeing one
#: of these in a cycle's drained fault events triggers a crash dump even
#: though the engine itself keeps running (degraded or respawned).
DEATH_KINDS = frozenset(
    {"kill", "wedge", "heartbeat-miss", "respawn", "worker-error"}
)

#: Segment-name prefix for recorder rings; the token body matches the
#: columnar store's ``<pid:08x>p<hex>`` format so the janitor's owner-pid
#: parsing works unchanged.
FLIGHT_PREFIX = "pfr"

BLACKBOX_MAGIC = b"PBBX0001"

_I64_MIN, _I64_MAX = -(1 << 63), (1 << 63) - 1


def _clamp_i64(value: int) -> int:
    return _I64_MIN if value < _I64_MIN else (_I64_MAX if value > _I64_MAX else value)


def flight_owner_pid(name: str) -> Optional[int]:
    """Owner pid embedded in a flight-recorder segment name, or ``None``."""
    return parse_owner_pid(name, prefix=FLIGHT_PREFIX)


def default_blackbox_path() -> str:
    """Fallback dump location when the engine config names none: pid-keyed
    under the temp dir, so repeated failures in one process overwrite one
    bounded file instead of accumulating."""
    return os.path.join(tempfile.gettempdir(), f"parulel-{os.getpid()}.blackbox")


def _flight_token() -> str:
    return (
        f"{FLIGHT_PREFIX}{os.getpid() & 0xFFFFFFFF:08x}p{secrets.token_hex(4)}"
    )


# -- the ring -----------------------------------------------------------------


class FlightRing:
    """One bounded event ring over a shared-memory segment (or a local
    ``bytearray`` when shared memory is unavailable — same layout, no
    crash-survivability).

    Writers append under a lock (the threaded match pool writes from many
    threads); the published header sequence makes reads from *other*
    processes safe without one: a decoder sees either the pre- or
    post-publish sequence, and any slot whose stored sequence disagrees
    with the expected one is reported as torn instead of decoded.
    """

    __slots__ = ("_buf", "_cap", "_lock", "_seg", "_seq", "name", "owned", "site")

    def __init__(
        self,
        capacity: int = DEFAULT_CAPACITY,
        site: int = -1,
        shared: bool = True,
    ) -> None:
        capacity = max(int(capacity), MIN_CAPACITY)
        size = HEADER_SIZE + capacity * RECORD_SIZE
        self._seg: Optional[_Seg] = None
        if shared:
            try:
                self._seg = _Seg(_flight_token(), size=size, create=True)
            except Exception:  # pragma: no cover - /dev/shm unavailable
                self._seg = None
        self._buf = self._seg.buf if self._seg is not None else bytearray(size)
        self._cap = capacity
        self._seq = 0
        self._lock = threading.Lock()
        self.name: Optional[str] = self._seg.name if self._seg is not None else None
        self.owned = True
        self.site = site
        HEADER.pack_into(
            self._buf, 0, _RING_MAGIC, RING_VERSION, capacity,
            site, os.getpid() & 0xFFFFFFFF, 0,
        )

    @classmethod
    def attach(cls, name: str) -> "FlightRing":
        """Map an existing ring by segment name (worker side). The attached
        ring continues the creator's sequence, so a respawned worker keeps
        appending where its predecessor stopped."""
        ring = cls.__new__(cls)
        ring._seg = _Seg(name)
        ring._buf = ring._seg.buf
        magic, version, cap, site, _pid, seq = HEADER.unpack_from(ring._buf, 0)
        if magic != _RING_MAGIC or version != RING_VERSION:
            ring._seg.close()
            raise ValueError(f"segment {name!r} is not a flight ring")
        ring._cap = cap
        ring._seq = seq
        ring._lock = threading.Lock()
        ring.name = name
        ring.owned = False
        ring.site = site
        return ring

    @property
    def shared(self) -> bool:
        return self._seg is not None

    @property
    def capacity(self) -> int:
        return self._cap

    @property
    def seq(self) -> int:
        return self._seq

    def append(
        self,
        kind: int,
        cycle: int = 0,
        code: int = 0,
        a: int = 0,
        b: int = 0,
        site: Optional[int] = None,
    ) -> None:
        """Write one record and publish it. Fixed cost: one pack into a
        preallocated slot plus the header-sequence store."""
        with self._lock:
            seq = self._seq
            RECORD.pack_into(
                self._buf,
                HEADER_SIZE + (seq % self._cap) * RECORD_SIZE,
                seq,
                time.perf_counter_ns(),
                _clamp_i64(a),
                _clamp_i64(b),
                cycle & 0xFFFFFFFF,
                kind & 0xFFFF,
                code & 0xFFFF,
                self.site if site is None else site,
            )
            self._seq = seq + 1
            _SEQ.pack_into(self._buf, _SEQ_OFFSET, self._seq)

    def snapshot(self) -> bytes:
        """The raw ring bytes (header + slots), for dumps and decoding.
        Safe to call on a ring another process is writing: torn slots are
        caught by the decoder's sequence check."""
        return bytes(self._buf)

    def close(self) -> None:
        """Release the mapping; the creating side also unlinks the name.
        (Rings owned by a :class:`FlightRecorder` are normally torn down
        by its finalizer instead — double unlink is harmless, ``_Seg``
        swallows the FileNotFoundError and fixes the tracker entry.)"""
        if self._seg is not None:
            try:
                self._seg.close()
            except Exception:  # pragma: no cover - teardown best-effort
                pass
            if self.owned:
                try:
                    self._seg.unlink()
                except Exception:  # pragma: no cover - teardown best-effort
                    pass
            self._seg = None
            self._buf = b""


def decode_ring(raw: bytes) -> Dict[str, Any]:
    """Decode one ring's raw bytes into records plus loss accounting.

    Returns ``{"site", "capacity", "seq", "dropped", "torn", "records"}``
    where each record is a dict with seq/ts_ns/cycle/kind/code/site/a/b.
    ``dropped`` counts records evicted by wraparound; ``torn`` counts slots
    whose stored sequence disagreed with the expected one (a writer died
    mid-record or the snapshot raced the writer) — those are skipped.
    """
    if len(raw) < HEADER_SIZE:
        raise ValueError("flight ring truncated: no header")
    magic, version, cap, site, pid, seq = HEADER.unpack_from(raw, 0)
    if magic != _RING_MAGIC:
        raise ValueError("flight ring header magic mismatch")
    if version != RING_VERSION:
        raise ValueError(f"flight ring version {version} unsupported")
    if len(raw) < HEADER_SIZE + cap * RECORD_SIZE:
        raise ValueError("flight ring truncated: slot area incomplete")
    count = min(seq, cap)
    first = seq - count
    records: List[Dict[str, int]] = []
    torn = 0
    for expect in range(first, seq):
        off = HEADER_SIZE + (expect % cap) * RECORD_SIZE
        rseq, ts_ns, a, b, cycle, kind, code, rsite = RECORD.unpack_from(raw, off)
        if rseq != expect:
            torn += 1
            continue
        records.append(
            {
                "seq": rseq,
                "ts_ns": ts_ns,
                "cycle": cycle,
                "kind": kind,
                "code": code,
                "site": rsite,
                "a": a,
                "b": b,
            }
        )
    return {
        "site": site,
        "pid": pid,
        "capacity": cap,
        "seq": seq,
        "dropped": first,
        "torn": torn,
        "records": records,
    }


# -- the recorder -------------------------------------------------------------


def _git_state() -> Dict[str, str]:
    """Best-effort HEAD sha/ref read straight from ``.git`` (no subprocess);
    empty dict when not in a git checkout."""
    d = os.getcwd()
    for _ in range(16):
        git = os.path.join(d, ".git")
        if os.path.isdir(git):
            try:
                head = open(os.path.join(git, "HEAD")).read().strip()
            except OSError:
                return {}
            state = {"head": head}
            if head.startswith("ref: "):
                ref = head[5:]
                try:
                    state["sha"] = open(os.path.join(git, ref)).read().strip()
                except OSError:
                    pass
            else:
                state["sha"] = head
            return state
        parent = os.path.dirname(d)
        if parent == d:
            break
        d = parent
    return {}


class FlightRecorder:
    """Owns the engine's main ring plus one shared ring per worker site,
    the rule/string manifest needed to decode them, and the dump writer.

    The parent creates worker rings up front (names embed the *parent*
    pid, so the janitor keeps them while the engine lives and reclaims
    them if the whole parent is SIGKILLed) and keeps them mapped; workers
    attach by name and write. A killed worker therefore loses nothing —
    the parent snapshots its ring straight out of shared memory.
    """

    def __init__(
        self,
        rule_names: Sequence[str] = (),
        capacity: int = DEFAULT_CAPACITY,
        shared: bool = True,
    ) -> None:
        self.origin_ns = time.perf_counter_ns()
        self.created_unix = time.time()
        self._rule_ids: Dict[str, int] = {
            name: i for i, name in enumerate(rule_names) if i < 0xFFFF
        }
        self._rules: List[str] = list(rule_names)[:0xFFFF]
        self._strings: List[str] = ["?"]
        self._string_ids: Dict[str, int] = {"?": 0}
        self._capacity = max(int(capacity), MIN_CAPACITY)
        self.ring = FlightRing(self._capacity, site=-1, shared=shared)
        self._worker_rings: Dict[int, FlightRing] = {}
        # Janitor-of-last-resort: unlink owned segments when the recorder
        # is dropped without close(), but never from a forked child.
        self._segs: Dict[str, _Seg] = {}
        if self.ring._seg is not None:
            self._segs[self.ring.name] = self.ring._seg  # type: ignore[index]
        self._finalizer = weakref.finalize(
            self, _cleanup_segments, os.getpid(), self._segs
        )
        self.enabled = True

    # -- manifest ---------------------------------------------------------

    def rule_id(self, name: str) -> int:
        rid = self._rule_ids.get(name)
        if rid is None:
            if len(self._rules) >= 0xFFFF:
                return 0
            rid = len(self._rules)
            self._rules.append(name)
            self._rule_ids[name] = rid
        return rid

    def intern(self, text: str) -> int:
        """Intern a short string (fault kind, dump reason) to a u16 code."""
        sid = self._string_ids.get(text)
        if sid is None:
            if len(self._strings) >= 0xFFFF:
                return 0
            sid = len(self._strings)
            self._strings.append(text)
            self._string_ids[text] = sid
        return sid

    def manifest(self) -> Dict[str, Any]:
        return {
            "rules": list(self._rules),
            "strings": list(self._strings),
            "phases": list(PHASE_NAMES),
            "kinds": {str(num): name for num, name in KIND_NAMES.items()},
        }

    # -- recording --------------------------------------------------------

    def record(
        self,
        kind: int,
        cycle: int = 0,
        code: int = 0,
        a: int = 0,
        b: int = 0,
        site: int = -1,
    ) -> None:
        self.ring.append(kind, cycle, code, a, b, site=site)

    def record_fault(self, kind: str, site: Optional[int], cycle: int) -> None:
        """Fault-injection / supervisor / ladder transition, by kind name."""
        s = site if isinstance(site, int) else -1
        self.record(EV_FAULT, cycle, code=self.intern(kind), a=s, site=s)

    # -- worker rings -----------------------------------------------------

    def create_worker_ring(self, site: int) -> Optional[str]:
        """Create (or reuse) the shared ring for one worker site and return
        its segment name, or ``None`` when shared memory is unavailable —
        workers then simply run unrecorded."""
        ring = self._worker_rings.get(site)
        if ring is None:
            ring = FlightRing(self._capacity, site=site, shared=True)
            if not ring.shared:
                return None
            self._worker_rings[site] = ring
            self._segs[ring.name] = ring._seg  # type: ignore[index]
        return ring.name

    def worker_spec(self, site: int, rule_names: Sequence[str]) -> Optional[Tuple[str, Dict[str, int]]]:
        """The ``(segment name, rule-id map)`` shipped to one worker at
        spawn, or ``None`` when the site has no shared ring."""
        name = self.create_worker_ring(site)
        if name is None:
            return None
        return name, {rn: self.rule_id(rn) for rn in rule_names}

    def worker_ring(self, site: int) -> Optional[FlightRing]:
        return self._worker_rings.get(site)

    # -- dumping ----------------------------------------------------------

    def dump(
        self,
        path: str,
        reason: str = "manual",
        info: Optional[Mapping[str, Any]] = None,
    ) -> str:
        """Write a self-contained ``*.blackbox`` post-mortem file.

        Layout: magic, u64 JSON-header length, JSON header (reason,
        manifest, environment, ring index), then each ring's raw bytes
        back to back. Atomic via rename so a crash during the dump never
        leaves a half-written file at the target path.
        """
        self.record(EV_DUMP, code=self.intern(reason[:200]))
        rings = [self.ring] + [
            self._worker_rings[s] for s in sorted(self._worker_rings)
        ]
        blobs = [r.snapshot() for r in rings]
        header: Dict[str, Any] = {
            "version": 1,
            "reason": reason,
            "created_unix": time.time(),
            "origin_ns": self.origin_ns,
            "pid": os.getpid(),
            "argv": list(sys.argv),
            "python": sys.version.split()[0],
            "git": _git_state(),
            "manifest": self.manifest(),
            "rings": [
                {"site": r.site, "name": r.name, "length": len(blob)}
                for r, blob in zip(rings, blobs)
            ],
        }
        if info:
            header["info"] = dict(info)
        payload = json.dumps(header, default=repr).encode("utf-8")
        tmp = f"{path}.tmp.{os.getpid()}"
        with open(tmp, "wb") as fh:
            fh.write(BLACKBOX_MAGIC)
            fh.write(struct.pack("<Q", len(payload)))
            fh.write(payload)
            for blob in blobs:
                fh.write(blob)
        os.replace(tmp, path)
        return path

    # -- lifecycle --------------------------------------------------------

    def close(self) -> None:
        """Release and unlink every owned segment (idempotent)."""
        self._finalizer()
        self._worker_rings.clear()
        self.ring._seg = None
        self.ring._buf = b""
        self.enabled = False


class NullFlightRecorder:
    """Disabled stand-in mirroring the NULL_TRACER/NULL_METRICS idiom for
    call sites that prefer a null object over an ``is not None`` guard."""

    enabled = False

    def record(self, *args: Any, **kw: Any) -> None:  # pragma: no cover
        pass

    def record_fault(self, *args: Any, **kw: Any) -> None:  # pragma: no cover
        pass

    def close(self) -> None:  # pragma: no cover
        pass


NULL_FLIGHTREC = NullFlightRecorder()
