"""Per-rule profiling: the hot-rule table.

The engine and match backends publish per-rule series into a
:class:`~repro.obs.metrics.MetricsRegistry` (see the metric catalog in
``docs/OBSERVABILITY.md``); this module folds them into one table per
rule — match time where the backend can attribute it (process workers,
degraded in-parent matching, the threaded pool), RHS evaluation time,
candidate counts, firings, and redactions — sorted hottest first. This
is the artifact ``parulel profile`` prints, and the answer to "which rule
should the next optimization PR attack".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.metrics.report import Table
from repro.obs.metrics import MetricsRegistry

__all__ = ["RuleProfile", "hot_rule_table", "rule_profiles"]

#: Metric names the profiler consumes (kept in one place so the engine,
#: backends, docs, and tests agree).
RULE_CANDIDATES = "parulel_rule_candidates_total"
RULE_FIRINGS = "parulel_rule_firings_total"
RULE_REDACTIONS = "parulel_rule_redactions_total"
RULE_EVAL_SECONDS = "parulel_rule_eval_seconds"
RULE_MATCH_SECONDS = "parulel_rule_match_seconds"
#: Per-op match-kernel work counters (``op`` label = a
#: :data:`repro.match.stats.COUNTER_NAMES` entry), exported by the engine
#: as per-cycle deltas of the matcher's MatchStats totals.
MATCH_OPS = "parulel_match_ops_total"
#: Candidates whose reification the certified commutativity fast path
#: skipped (``EngineConfig.certified_commute``).
REDACTION_SKIPPED = "parulel_redaction_skipped_total"
#: Fired pairs the runtime race sanitizer replayed in both orders
#: (``EngineConfig.sanitize_races``).
SANITIZER_REPLAYS = "parulel_sanitizer_replays_total"
#: Rows the vectorized probe kernel scanned column-natively (``site``
#: label), and probes that left the packed-key path for decoded
#: comparison — the scan-vs-decode attribution the skew reports read.
VECTOR_SCAN_ROWS = "parulel_vector_scan_rows_total"
VECTOR_PROBE_FALLBACK = "parulel_vector_probe_fallback_total"
#: Gauges exported by ``parulel blackbox report``
#: (:func:`repro.obs.blackbox.skew_report`): a site's mean per-cycle busy
#: time over the all-site mean, and a rule's share of total attributed
#: time — the skew signal the adaptive-scheduling roadmap item consumes.
SITE_SKEW_RATIO = "parulel_site_skew_ratio"
RULE_TIME_SHARE = "parulel_rule_time_share"


@dataclass
class RuleProfile:
    """Aggregated per-rule observations for one run."""

    rule: str
    candidates: int = 0
    fired: int = 0
    redacted: int = 0
    eval_seconds: float = 0.0
    #: ``None`` when no backend attributed match time to this rule (the
    #: incremental RETE/TREAT engines cannot split their network work per
    #: rule; the process/threaded/naive paths can).
    match_seconds: Optional[float] = None
    sites: List[str] = field(default_factory=list)

    @property
    def total_seconds(self) -> float:
        return (self.match_seconds or 0.0) + self.eval_seconds


def _rule_of(labels) -> Optional[str]:
    return dict(labels).get("rule")


def rule_profiles(metrics: MetricsRegistry) -> List[RuleProfile]:
    """Fold the registry's per-rule series into :class:`RuleProfile`\\ s,
    hottest (most attributed time, then most candidates) first."""
    profiles: Dict[str, RuleProfile] = {}

    def get(rule: str) -> RuleProfile:
        profile = profiles.get(rule)
        if profile is None:
            profile = profiles[rule] = RuleProfile(rule)
        return profile

    for labels, value in metrics.series(RULE_CANDIDATES).items():
        rule = _rule_of(labels)
        if rule is not None:
            get(rule).candidates += int(value)
    for labels, value in metrics.series(RULE_FIRINGS).items():
        rule = _rule_of(labels)
        if rule is not None:
            get(rule).fired += int(value)
    for labels, value in metrics.series(RULE_REDACTIONS).items():
        rule = _rule_of(labels)
        if rule is not None:
            get(rule).redacted += int(value)
    for labels, summary in metrics.histogram_series(RULE_EVAL_SECONDS).items():
        rule = _rule_of(labels)
        if rule is not None:
            get(rule).eval_seconds += summary["sum"]
    for labels, summary in metrics.histogram_series(RULE_MATCH_SECONDS).items():
        rule = _rule_of(labels)
        if rule is None:
            continue
        profile = get(rule)
        profile.match_seconds = (profile.match_seconds or 0.0) + summary["sum"]
        site = dict(labels).get("site")
        if site is not None and site not in profile.sites:
            profile.sites.append(site)
    return sorted(
        profiles.values(),
        key=lambda p: (-p.total_seconds, -p.candidates, p.rule),
    )


def hot_rule_table(metrics: MetricsRegistry, top: Optional[int] = None) -> Table:
    """The hot-rule table (times in ms; ``-`` where a backend could not
    attribute match time per rule)."""
    table = Table(
        "hot rules (most attributed time first)",
        ("rule", "match_ms", "eval_ms", "candidates", "fired", "redacted"),
        precision=3,
    )
    rows = rule_profiles(metrics)
    if top is not None:
        rows = rows[:top]
    for p in rows:
        table.add(
            p.rule,
            None if p.match_seconds is None else p.match_seconds * 1000.0,
            p.eval_seconds * 1000.0,
            p.candidates,
            p.fired,
            p.redacted,
        )
    return table
