"""Span/event tracing with Chrome trace-event export.

The tracer answers the question PARULEL's whole case rests on — *where
does the cycle time go* — with real spans instead of ad-hoc
``perf_counter`` arithmetic:

- a **span** is a named interval on a **lane** (the engine, one worker
  process, one distributed site, the simulated network); spans nest;
- an **instant** is a point event on a lane (fault injections, recovery
  actions);
- every closed span also feeds a thread-safe
  :class:`~repro.metrics.timers.PhaseTimer`, so aggregate per-name
  seconds/entries are always available without replaying the event list.

Recording is thread-safe (one lock around the event list) and
process-friendly: timestamps come from ``time.perf_counter_ns()``, whose
``CLOCK_MONOTONIC`` base is system-wide on the platforms we run on, so a
worker process can record spans locally, ship the raw event buffer back
over its result pipe, and the parent :meth:`Tracer.ingest`\\ s them onto a
worker lane of the same timeline.

Exports:

- :meth:`Tracer.to_chrome` / :meth:`Tracer.write_chrome` — the Chrome
  trace-event JSON object format (``{"traceEvents": [...]}``) with
  ``B``/``E`` duration events and ``i`` instants, loadable in Perfetto
  (https://ui.perfetto.dev) or ``chrome://tracing``. Lane names become
  thread-name metadata. Timestamps per lane are made *strictly*
  increasing at export time (equal stamps are nudged by a nanosecond-scale
  epsilon) so downstream tooling never sees a zero-width inversion.
- :meth:`Tracer.write_jsonl` — one event object per line, for ad-hoc
  ``jq``/pandas digestion.

:class:`NullTracer` is the default everywhere: every operation is a no-op
on shared singleton objects, so the disabled path costs an attribute load
and a truth test — nothing allocates, nothing locks.
"""

from __future__ import annotations

import json
import threading
import time
from typing import Any, Dict, Iterable, List, Optional, Tuple

from repro.metrics.timers import PhaseTimer

__all__ = [
    "NULL_TRACER",
    "NullTracer",
    "PhaseSpan",
    "Tracer",
    "TraceEvent",
    "validate_chrome_trace",
]

#: Histogram of per-cycle engine phase durations (seconds), labelled by
#: phase key — recorded by :class:`PhaseSpan` when metrics are enabled.
PHASE_SECONDS = "parulel_phase_seconds"

#: One recorded event: ``(phase, name, lane, ts_ns, args)`` where ``phase``
#: is ``"B"`` (span begin), ``"E"`` (span end) or ``"i"`` (instant) and
#: ``ts_ns`` is an absolute ``perf_counter_ns`` stamp. Plain tuples keep
#: the buffer picklable for worker → parent shipping.
TraceEvent = Tuple[str, str, str, int, Optional[Dict[str, Any]]]

#: Export-time epsilon (µs) used to break timestamp ties within a lane.
_EPSILON_US = 0.001


class _SpanHandle:
    """Context manager for one live span (allocated per enabled span)."""

    __slots__ = ("_tracer", "_name", "_lane", "_args")

    def __init__(self, tracer: "Tracer", name: str, lane: str, args: Optional[Dict[str, Any]]) -> None:
        self._tracer = tracer
        self._name = name
        self._lane = lane
        self._args = args

    def __enter__(self) -> "_SpanHandle":
        self._tracer._record("B", self._name, self._lane, self._args)
        return self

    def __exit__(self, *exc: object) -> None:
        self._tracer._record("E", self._name, self._lane, None)


class Tracer:
    """Thread-safe span/instant recorder on a shared monotonic timeline."""

    enabled = True

    def __init__(self, clock=time.perf_counter_ns) -> None:
        self._clock = clock
        self._lock = threading.Lock()
        self._events: List[TraceEvent] = []
        #: Lanes in first-seen order (stable tid assignment in exports).
        self._lanes: List[str] = []
        self._lane_set: set = set()
        #: Aggregate per-span-name seconds/entries — the PhaseTimer the
        #: span layer is backed by (closed spans land here).
        self.timer = PhaseTimer()
        self._open_ns: Dict[Tuple[str, str], List[int]] = {}
        self.origin_ns = clock()

    # -- recording ----------------------------------------------------------

    def _record(self, ph: str, name: str, lane: str, args: Optional[Dict[str, Any]]) -> None:
        ts = self._clock()
        with self._lock:
            self._note_lane(lane)
            self._events.append((ph, name, lane, ts, args))
            key = (lane, name)
            if ph == "B":
                self._open_ns.setdefault(key, []).append(ts)
            elif ph == "E":
                starts = self._open_ns.get(key)
                if starts:
                    self.timer.add(name, (ts - starts.pop()) / 1e9)

    def _note_lane(self, lane: str) -> None:
        if lane not in self._lane_set:
            self._lane_set.add(lane)
            self._lanes.append(lane)

    def declare_lane(self, lane: str) -> None:
        """Pre-register a lane so exports order it by declaration, not by
        whichever event happens to reach it first (distributed sites use
        this to keep ``site-0..P-1`` above the network lane)."""
        with self._lock:
            self._note_lane(lane)

    def span(self, name: str, lane: str = "engine", **args: Any) -> _SpanHandle:
        """Context manager recording a ``B``/``E`` pair on ``lane``."""
        return _SpanHandle(self, name, lane, args or None)

    def instant(self, name: str, lane: str = "engine", **args: Any) -> None:
        """Record a point event (fault injections, recovery actions...)."""
        self._record("i", name, lane, args or None)

    # -- cross-process ingestion -------------------------------------------

    def drain_events(self) -> List[TraceEvent]:
        """Remove and return the raw buffer (worker-side shipping hook)."""
        with self._lock:
            out, self._events = self._events, []
            return out

    def ingest(self, events: Iterable[TraceEvent], lane: Optional[str] = None) -> None:
        """Merge raw events from another tracer (typically a worker
        process) onto this timeline, optionally rewriting their lane.

        Worker stamps share this tracer's clock base, so they drop into
        place; anything recorded before this tracer's origin clamps to it
        at export time rather than going negative.
        """
        with self._lock:
            for ph, name, evlane, ts, args in events:
                target = lane if lane is not None else evlane
                self._note_lane(target)
                self._events.append((ph, name, target, ts, args))
                if ph == "E":
                    # Aggregate time still lands in the timer: find is not
                    # possible without the matching B, so ingestion pairs
                    # B/E per (lane, name) as the buffer replays.
                    starts = self._open_ns.get((target, name))
                    if starts:
                        self.timer.add(name, (ts - starts.pop()) / 1e9)
                elif ph == "B":
                    self._open_ns.setdefault((target, name), []).append(ts)

    # -- queries ------------------------------------------------------------

    def events(self) -> List[TraceEvent]:
        with self._lock:
            return list(self._events)

    def lanes(self) -> List[str]:
        with self._lock:
            return list(self._lanes)

    # -- export -------------------------------------------------------------

    def _export_rows(self) -> List[Dict[str, Any]]:
        """Events as JSON-able dicts with per-lane strictly-increasing µs
        timestamps (ties broken by a sub-µs epsilon, order preserved)."""
        with self._lock:
            events = list(self._events)
            lanes = list(self._lanes)
        tid_of = {lane: i + 1 for i, lane in enumerate(lanes)}
        last_ts: Dict[str, float] = {}
        rows: List[Dict[str, Any]] = []
        for ph, name, lane, ts_ns, args in events:
            ts_us = max(0, ts_ns - self.origin_ns) / 1000.0
            floor = last_ts.get(lane)
            if floor is not None and ts_us <= floor:
                ts_us = floor + _EPSILON_US
            last_ts[lane] = ts_us
            row: Dict[str, Any] = {
                "name": name,
                "ph": ph,
                "ts": ts_us,
                "pid": 1,
                "tid": tid_of[lane],
                "cat": "parulel",
            }
            if ph == "i":
                row["s"] = "t"  # thread-scoped instant
            if args:
                row["args"] = dict(args)
            rows.append(row)
        return rows

    def to_chrome(self) -> Dict[str, Any]:
        """The Chrome trace-event *JSON object format* document."""
        with self._lock:
            lanes = list(self._lanes)
        meta: List[Dict[str, Any]] = [
            {
                "name": "process_name",
                "ph": "M",
                "pid": 1,
                "tid": 0,
                "args": {"name": "parulel"},
            }
        ]
        for i, lane in enumerate(lanes):
            meta.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "pid": 1,
                    "tid": i + 1,
                    "args": {"name": lane},
                }
            )
            meta.append(
                {
                    "name": "thread_sort_index",
                    "ph": "M",
                    "pid": 1,
                    "tid": i + 1,
                    "args": {"sort_index": i},
                }
            )
        return {
            "traceEvents": meta + self._export_rows(),
            "displayTimeUnit": "ms",
        }

    def write_chrome(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(self.to_chrome(), fh)

    def write_jsonl(self, path: str) -> None:
        """One event object per line (lane names inline, not tids)."""
        with self._lock:
            events = list(self._events)
        with open(path, "w", encoding="utf-8") as fh:
            for ph, name, lane, ts_ns, args in events:
                fh.write(
                    json.dumps(
                        {
                            "ph": ph,
                            "name": name,
                            "lane": lane,
                            "ts_us": max(0, ts_ns - self.origin_ns) / 1000.0,
                            "args": args or {},
                        }
                    )
                )
                fh.write("\n")


class PhaseSpan:
    """Measures one engine phase once and fans the measurement out.

    One ``perf_counter`` pair feeds up to four consumers: the engine's
    public :class:`~repro.metrics.timers.PhaseTimer` (always —
    ``phase_times`` stays populated with tracing off), the tracer (as a
    span named ``name`` on ``lane``, when enabled), the metrics registry
    (as a :data:`PHASE_SECONDS` observation labelled ``phase``, when
    enabled), and the flight recorder (as an ``EV_PHASE`` ring record with
    the duration in nanoseconds, when one is attached).
    """

    __slots__ = (
        "_timer", "_tracer", "_metrics", "_name", "_phase", "_lane",
        "_args", "_t0", "_span", "_flightrec", "_flight_cycle", "_flight_code",
    )

    def __init__(
        self,
        timer: PhaseTimer,
        tracer,
        metrics,
        name: str,
        phase: str,
        lane: str = "engine",
        flightrec=None,
        flight_cycle: int = 0,
        flight_code: int = 0,
        **args: Any,
    ) -> None:
        self._timer = timer
        self._tracer = tracer
        self._metrics = metrics
        self._name = name
        self._phase = phase
        self._lane = lane
        self._args = args
        self._span = None
        self._flightrec = flightrec
        self._flight_cycle = flight_cycle
        self._flight_code = flight_code

    def __enter__(self) -> "PhaseSpan":
        if self._tracer.enabled:
            self._span = self._tracer.span(self._name, self._lane, **self._args)
            self._span.__enter__()
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, *exc: object) -> None:
        elapsed = time.perf_counter() - self._t0
        if self._span is not None:
            self._span.__exit__(*exc)
        self._timer.add(self._phase, elapsed)
        if self._metrics.enabled:
            self._metrics.observe(PHASE_SECONDS, elapsed, phase=self._phase)
        if self._flightrec is not None:
            self._flightrec.record(
                2,  # flightrec.EV_PHASE (literal: obs.trace must stay import-light)
                self._flight_cycle,
                code=self._flight_code,
                a=int(elapsed * 1e9),
            )


class _NullSpan:
    """Reusable no-op context manager (one shared instance, no state)."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc: object) -> None:
        return None


_NULL_SPAN = _NullSpan()


class NullTracer:
    """The zero-cost disabled tracer: every call is a constant no-op."""

    enabled = False

    def declare_lane(self, lane: str) -> None:
        return None

    def span(self, name: str, lane: str = "engine", **args: Any) -> _NullSpan:
        return _NULL_SPAN

    def instant(self, name: str, lane: str = "engine", **args: Any) -> None:
        return None

    def ingest(self, events: Iterable[TraceEvent], lane: Optional[str] = None) -> None:
        return None

    def drain_events(self) -> List[TraceEvent]:
        return []

    def events(self) -> List[TraceEvent]:
        return []

    def lanes(self) -> List[str]:
        return []


#: Shared default instance — engines/backends hold this when tracing is off.
NULL_TRACER = NullTracer()


def validate_chrome_trace(doc: Dict[str, Any]) -> None:
    """Validate a Chrome trace-event document (the shape our exporter and
    the trace-event spec agree on); raise :class:`ValueError` on the first
    violation. Checked properties:

    - top level is an object with a ``traceEvents`` list;
    - every event carries ``name``/``ph``/``pid``/``tid`` (and ``ts`` for
      non-metadata events);
    - per (pid, tid) lane, ``B``/``E`` events pair up like a well-formed
      bracket sequence with matching names;
    - per lane, timestamps are strictly increasing.
    """
    if not isinstance(doc, dict) or not isinstance(doc.get("traceEvents"), list):
        raise ValueError("trace document must be an object with a 'traceEvents' list")
    stacks: Dict[Tuple[int, int], List[str]] = {}
    last_ts: Dict[Tuple[int, int], float] = {}
    for i, ev in enumerate(doc["traceEvents"]):
        if not isinstance(ev, dict):
            raise ValueError(f"event #{i} is not an object")
        for field in ("name", "ph", "pid", "tid"):
            if field not in ev:
                raise ValueError(f"event #{i} is missing required field {field!r}")
        ph = ev["ph"]
        if ph == "M":
            continue
        if "ts" not in ev:
            raise ValueError(f"event #{i} ({ev['name']!r}) has no 'ts'")
        lane = (ev["pid"], ev["tid"])
        ts = float(ev["ts"])
        if lane in last_ts and ts <= last_ts[lane]:
            raise ValueError(
                f"event #{i} ({ev['name']!r}): ts {ts} not strictly greater "
                f"than previous ts {last_ts[lane]} on lane pid={lane[0]} "
                f"tid={lane[1]}"
            )
        last_ts[lane] = ts
        if ph == "B":
            stacks.setdefault(lane, []).append(ev["name"])
        elif ph == "E":
            stack = stacks.get(lane)
            if not stack:
                raise ValueError(
                    f"event #{i}: 'E' for {ev['name']!r} with no open span "
                    f"on lane pid={lane[0]} tid={lane[1]}"
                )
            opened = stack.pop()
            if opened != ev["name"]:
                raise ValueError(
                    f"event #{i}: 'E' for {ev['name']!r} does not match the "
                    f"open span {opened!r}"
                )
        elif ph not in ("i", "I", "X", "C"):
            raise ValueError(f"event #{i}: unsupported phase {ph!r}")
    for lane, stack in stacks.items():
        if stack:
            raise ValueError(
                f"unclosed span(s) {stack!r} on lane pid={lane[0]} tid={lane[1]}"
            )
