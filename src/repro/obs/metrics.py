"""Counters, gauges and histograms with JSON and Prometheus exposition.

A :class:`MetricsRegistry` is a thread-safe bag of labelled series:

- **counters** — monotonically increasing floats (``inc``),
- **gauges** — last-write-wins floats (``set_gauge``),
- **histograms** — observation series (``observe``) that expose count,
  sum, min/max, p50/p95 percentiles, and Prometheus cumulative buckets.

Series identity is ``(name, sorted(labels))``, so
``inc("parulel_rule_firings_total", rule="tc-extend")`` and the same call
with a different rule are distinct series of one metric — exactly the
Prometheus data model.

Cross-process story: worker processes keep their own registry, ship
:meth:`MetricsRegistry.dump` (a picklable dict) back with their results,
and the parent :meth:`MetricsRegistry.merge`\\ s it — counters add,
gauges last-write-wins, histogram observations concatenate. Counts stay
*exact* under this scheme (the concurrency tests hammer it from threads
and real worker processes).

:class:`NullMetrics` is the free disabled default; hot paths guard any
per-item work with ``metrics.enabled``.
"""

from __future__ import annotations

import json
import threading
from typing import Any, Dict, Iterable, List, Mapping, Optional, Tuple

from repro.metrics.timers import percentile

__all__ = ["NULL_METRICS", "MetricsRegistry", "NullMetrics"]

#: A series key: metric name + canonicalized label pairs.
SeriesKey = Tuple[str, Tuple[Tuple[str, str], ...]]

#: Default histogram buckets (seconds) for the Prometheus exposition —
#: tuned for phase/rule timings: 10µs .. 10s.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    1e-5, 1e-4, 1e-3, 5e-3, 1e-2, 5e-2, 0.1, 0.5, 1.0, 5.0, 10.0,
)

#: Cap on raw observations kept per histogram series; past it the series
#: keeps exact count/sum/min/max but percentiles reflect the first N.
MAX_OBSERVATIONS = 65_536


def _key(name: str, labels: Mapping[str, Any]) -> SeriesKey:
    return name, tuple(sorted((k, str(v)) for k, v in labels.items()))


def _labels_str(labels: Tuple[Tuple[str, str], ...]) -> str:
    if not labels:
        return ""
    inner = ",".join(f'{k}="{v}"' for k, v in labels)
    return "{" + inner + "}"


class _Histogram:
    __slots__ = ("count", "total", "vmin", "vmax", "values")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.vmin: Optional[float] = None
        self.vmax: Optional[float] = None
        self.values: List[float] = []

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        self.vmin = value if self.vmin is None else min(self.vmin, value)
        self.vmax = value if self.vmax is None else max(self.vmax, value)
        if len(self.values) < MAX_OBSERVATIONS:
            self.values.append(value)

    def summary(self) -> Dict[str, float]:
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.vmin if self.vmin is not None else 0.0,
            "max": self.vmax if self.vmax is not None else 0.0,
            "p50": percentile(self.values, 50),
            "p95": percentile(self.values, 95),
        }


class MetricsRegistry:
    """Thread-safe labelled counters/gauges/histograms."""

    enabled = True

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[SeriesKey, float] = {}
        self._gauges: Dict[SeriesKey, float] = {}
        self._hists: Dict[SeriesKey, _Histogram] = {}

    # -- recording ----------------------------------------------------------

    def inc(self, name: str, value: float = 1.0, **labels: Any) -> None:
        key = _key(name, labels)
        with self._lock:
            self._counters[key] = self._counters.get(key, 0.0) + value

    def set_gauge(self, name: str, value: float, **labels: Any) -> None:
        with self._lock:
            self._gauges[_key(name, labels)] = float(value)

    def observe(self, name: str, value: float, **labels: Any) -> None:
        key = _key(name, labels)
        with self._lock:
            hist = self._hists.get(key)
            if hist is None:
                hist = self._hists[key] = _Histogram()
            hist.observe(float(value))

    # -- queries ------------------------------------------------------------

    def counter_value(self, name: str, **labels: Any) -> float:
        with self._lock:
            return self._counters.get(_key(name, labels), 0.0)

    def gauge_value(self, name: str, **labels: Any) -> Optional[float]:
        with self._lock:
            return self._gauges.get(_key(name, labels))

    def histogram_summary(self, name: str, **labels: Any) -> Dict[str, float]:
        with self._lock:
            hist = self._hists.get(_key(name, labels))
            return hist.summary() if hist is not None else _Histogram().summary()

    def series(self, name: str) -> Dict[Tuple[Tuple[str, str], ...], float]:
        """All counter series of ``name`` (labels tuple → value) — what
        the per-rule profiler iterates."""
        with self._lock:
            return {
                labels: v
                for (n, labels), v in self._counters.items()
                if n == name
            }

    def histogram_series(self, name: str) -> Dict[Tuple[Tuple[str, str], ...], Dict[str, float]]:
        with self._lock:
            return {
                labels: h.summary()
                for (n, labels), h in self._hists.items()
                if n == name
            }

    # -- cross-process merge -------------------------------------------------

    def dump(self) -> Dict[str, Any]:
        """Picklable full state (worker → parent shipping)."""
        with self._lock:
            return {
                "counters": [(n, list(l), v) for (n, l), v in self._counters.items()],
                "gauges": [(n, list(l), v) for (n, l), v in self._gauges.items()],
                "hists": [
                    (n, list(l), h.count, h.total, h.vmin, h.vmax, list(h.values))
                    for (n, l), h in self._hists.items()
                ],
            }

    def merge(self, dumped: Mapping[str, Any]) -> None:
        """Fold another registry's :meth:`dump` in: counters add, gauges
        last-write-wins, histogram observations concatenate."""
        with self._lock:
            for n, labels, v in dumped.get("counters", ()):
                key = (n, tuple((k, s) for k, s in labels))
                self._counters[key] = self._counters.get(key, 0.0) + v
            for n, labels, v in dumped.get("gauges", ()):
                self._gauges[(n, tuple((k, s) for k, s in labels))] = v
            for n, labels, count, total, vmin, vmax, values in dumped.get("hists", ()):
                key = (n, tuple((k, s) for k, s in labels))
                hist = self._hists.get(key)
                if hist is None:
                    hist = self._hists[key] = _Histogram()
                hist.count += count
                hist.total += total
                if vmin is not None:
                    hist.vmin = vmin if hist.vmin is None else min(hist.vmin, vmin)
                if vmax is not None:
                    hist.vmax = vmax if hist.vmax is None else max(hist.vmax, vmax)
                room = MAX_OBSERVATIONS - len(hist.values)
                if room > 0:
                    hist.values.extend(values[:room])

    # -- exposition ----------------------------------------------------------

    def snapshot(self) -> Dict[str, Any]:
        """JSON-able snapshot: series keyed by ``name{label="v",...}``."""
        with self._lock:
            counters = {
                f"{n}{_labels_str(l)}": v for (n, l), v in sorted(self._counters.items())
            }
            gauges = {
                f"{n}{_labels_str(l)}": v for (n, l), v in sorted(self._gauges.items())
            }
            hists = {
                f"{n}{_labels_str(l)}": h.summary()
                for (n, l), h in sorted(self._hists.items())
            }
        return {"counters": counters, "gauges": gauges, "histograms": hists}

    def write_json(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(self.snapshot(), fh, indent=2, sort_keys=True)

    def to_prometheus(self, buckets: Iterable[float] = DEFAULT_BUCKETS) -> str:
        """Prometheus text exposition format (v0.0.4).

        Histograms render with cumulative ``_bucket`` series over
        ``buckets`` plus ``+Inf``, ``_sum`` and ``_count`` — computed from
        the stored observations at exposition time.
        """
        bucket_bounds = sorted(buckets)
        lines: List[str] = []
        with self._lock:
            counter_items = sorted(self._counters.items())
            gauge_items = sorted(self._gauges.items())
            hist_items = sorted(
                (key, h.count, h.total, list(h.values))
                for key, h in self._hists.items()
            )
        seen_types: set = set()
        for (name, labels), value in counter_items:
            if name not in seen_types:
                seen_types.add(name)
                lines.append(f"# TYPE {name} counter")
            lines.append(f"{name}{_labels_str(labels)} {_fmt(value)}")
        for (name, labels), value in gauge_items:
            if name not in seen_types:
                seen_types.add(name)
                lines.append(f"# TYPE {name} gauge")
            lines.append(f"{name}{_labels_str(labels)} {_fmt(value)}")
        for (name, labels), count, total, values in hist_items:
            if name not in seen_types:
                seen_types.add(name)
                lines.append(f"# TYPE {name} histogram")
            cumulative = 0
            remaining = sorted(values)
            idx = 0
            for bound in bucket_bounds:
                while idx < len(remaining) and remaining[idx] <= bound:
                    idx += 1
                cumulative = idx
                le_labels = labels + (("le", _fmt(bound)),)
                lines.append(f"{name}_bucket{_labels_str(le_labels)} {cumulative}")
            inf_labels = labels + (("le", "+Inf"),)
            lines.append(f"{name}_bucket{_labels_str(inf_labels)} {count}")
            lines.append(f"{name}_sum{_labels_str(labels)} {_fmt(total)}")
            lines.append(f"{name}_count{_labels_str(labels)} {count}")
        return "\n".join(lines) + ("\n" if lines else "")

    def write_prometheus(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(self.to_prometheus())


def _fmt(value: float) -> str:
    """Render ints without a trailing ``.0`` (Prometheus-friendly)."""
    f = float(value)
    return str(int(f)) if f.is_integer() else repr(f)


class NullMetrics:
    """The zero-cost disabled registry: every call is a constant no-op."""

    enabled = False

    def inc(self, name: str, value: float = 1.0, **labels: Any) -> None:
        return None

    def set_gauge(self, name: str, value: float, **labels: Any) -> None:
        return None

    def observe(self, name: str, value: float, **labels: Any) -> None:
        return None

    def counter_value(self, name: str, **labels: Any) -> float:
        return 0.0

    def gauge_value(self, name: str, **labels: Any) -> Optional[float]:
        return None

    def series(self, name: str) -> Dict[Tuple[Tuple[str, str], ...], float]:
        return {}

    def histogram_series(self, name: str) -> Dict[Tuple[Tuple[str, str], ...], Dict[str, float]]:
        return {}

    def dump(self) -> Dict[str, Any]:
        return {"counters": [], "gauges": [], "hists": []}

    def merge(self, dumped: Mapping[str, Any]) -> None:
        return None

    def snapshot(self) -> Dict[str, Any]:
        return {"counters": {}, "gauges": {}, "histograms": {}}


#: Shared default instance — engines/backends hold this when metrics are off.
NULL_METRICS = NullMetrics()
