"""Decode ``*.blackbox`` flight-recorder dumps: timelines, skew, diffs.

A dump (written by :meth:`repro.obs.flightrec.FlightRecorder.dump`) is a
JSON header plus the raw bytes of every ring the recorder owned. This
module turns that into:

- :func:`load_blackbox` — parse and sequence-check every ring,
- :meth:`Blackbox.timeline` — one merged, timestamp-ordered causal
  timeline across the engine and all worker rings,
- :func:`skew_report` — per-site busy-time skew and per-rule time share
  with p50/p95 cycle-phase percentiles, exportable into a
  :class:`~repro.obs.metrics.MetricsRegistry` as the
  ``parulel_site_skew_ratio`` / ``parulel_rule_time_share`` gauges the
  future adaptive scheduler consumes,
- :func:`diff_blackbox` — first diverging event between two recordings,
  comparing only deterministic projections (rule/cycle/count fields,
  never wall-clock durations), so two same-seed runs diff clean and a
  seeded fault run pinpoints exactly where byte-identity broke.
"""

from __future__ import annotations

import json
import struct
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.errors import BlackboxCorruptError
from repro.obs.flightrec import (
    BLACKBOX_MAGIC,
    EV_ATTACH,
    EV_CHECKPOINT,
    EV_CHURN,
    EV_CYCLE,
    EV_DUMP,
    EV_FAULT,
    EV_FIRE,
    EV_HALT,
    EV_MATCH_REPLY,
    EV_MATCH_REQ,
    EV_PHASE,
    EV_RACE,
    EV_REDACT,
    EV_REPLAY,
    EV_RULE_BEGIN,
    EV_RULE_END,
    EV_VECTOR_SCAN,
    EV_WORKER_EXIT,
    EV_WORKER_START,
    KIND_NAMES,
    decode_ring,
)

from repro.obs.profile import RULE_TIME_SHARE, SITE_SKEW_RATIO

__all__ = [
    "Blackbox",
    "DiffResult",
    "RingDump",
    "diff_blackbox",
    "load_blackbox",
    "skew_report",
]


@dataclass
class RingDump:
    """One decoded ring."""

    site: int
    name: Optional[str]
    capacity: int
    seq: int
    dropped: int
    torn: int
    records: List[Dict[str, int]] = field(default_factory=list)


class Blackbox:
    """A parsed dump: header metadata plus every decoded ring."""

    def __init__(self, header: Dict[str, Any], rings: List[RingDump]) -> None:
        self.header = header
        self.rings = rings
        manifest = header.get("manifest", {})
        self.rules: List[str] = list(manifest.get("rules", []))
        self.strings: List[str] = list(manifest.get("strings", []))
        self.phases: List[str] = list(manifest.get("phases", []))

    # -- lookups ----------------------------------------------------------

    @property
    def reason(self) -> str:
        return str(self.header.get("reason", ""))

    def ring(self, site: int) -> Optional[RingDump]:
        for r in self.rings:
            if r.site == site:
                return r
        return None

    @property
    def main(self) -> Optional[RingDump]:
        return self.ring(-1)

    def rule_name(self, code: int) -> str:
        if 0 <= code < len(self.rules):
            return self.rules[code]
        return f"rule#{code}"

    def string(self, code: int) -> str:
        if 0 <= code < len(self.strings):
            return self.strings[code]
        return f"str#{code}"

    def phase_name(self, code: int) -> str:
        if 0 <= code < len(self.phases):
            return self.phases[code]
        return f"phase#{code}"

    # -- rendering --------------------------------------------------------

    def describe(self, rec: Dict[str, int]) -> str:
        """One human line for a record (without the timestamp column)."""
        kind, code, a, b = rec["kind"], rec["code"], rec["a"], rec["b"]
        if kind == EV_CYCLE:
            return f"cycle {rec['cycle']} done: fired={a} conflict_set={b}"
        if kind == EV_PHASE:
            return f"phase {self.phase_name(code)} {a / 1e6:.3f}ms"
        if kind == EV_FIRE:
            return f"fire {self.rule_name(code)} ({a / 1e6:.3f}ms)"
        if kind == EV_REDACT:
            return f"redact: candidates={a} redacted={b}"
        if kind == EV_CHURN:
            return f"churn: instantiations={a} candidates={b}"
        if kind == EV_CHECKPOINT:
            return f"checkpoint ({'full' if code == 0 else 'delta'})"
        if kind == EV_FAULT:
            return f"fault {self.string(code)} site={a}"
        if kind == EV_RACE:
            return f"race {self.rule_name(code)} vs {self.rule_name(a)}"
        if kind == EV_REPLAY:
            return f"sanitizer replayed {a} pair(s)"
        if kind == EV_HALT:
            return "halt"
        if kind == EV_DUMP:
            return f"dump: {self.string(code)}"
        if kind == EV_WORKER_START:
            return f"worker up (pid {a})"
        if kind == EV_WORKER_EXIT:
            return "worker stop"
        if kind == EV_MATCH_REQ:
            return "match request (shm refresh)" if a < 0 else f"match request ({a} deltas)"
        if kind == EV_RULE_BEGIN:
            return f"matching {self.rule_name(code)}"
        if kind == EV_RULE_END:
            return f"matched {self.rule_name(code)}: {a} inst"
        if kind == EV_MATCH_REPLY:
            return f"reply ({a} summaries)"
        if kind == EV_ATTACH:
            return "attach"
        if kind == EV_VECTOR_SCAN:
            return (
                f"vector scan: {a} rows, {b} materialized, "
                f"{code} fallback probe(s)"
            )
        return f"{KIND_NAMES.get(kind, f'kind#{kind}')} code={code} a={a} b={b}"

    # -- timeline ---------------------------------------------------------

    def timeline(self) -> List[Tuple[int, int, Dict[str, int]]]:
        """All records from all rings merged by timestamp: a list of
        ``(ts_ns, effective_site, record)`` tuples. The effective site is
        the record's own site tag when set, else the ring's."""
        merged: List[Tuple[int, int, Dict[str, int]]] = []
        for ring in self.rings:
            for rec in ring.records:
                site = rec["site"] if rec["site"] >= 0 else ring.site
                merged.append((rec["ts_ns"], site, rec))
        merged.sort(key=lambda t: (t[0], t[1]))
        return merged

    def last_in_flight(self, site: int) -> Optional[Tuple[str, bool]]:
        """The last rule a site was matching: ``(rule name, completed)``
        from the newest ``rule-begin`` record in the site's ring (its own
        or site-tagged engine-ring records), or ``None`` if the site never
        began matching a rule. ``completed`` is False when no matching
        ``rule-end`` follows — the worker died mid-rule."""
        best: Optional[Dict[str, int]] = None
        ended = False
        for ring in self.rings:
            for rec in ring.records:
                rsite = rec["site"] if rec["site"] >= 0 else ring.site
                if rsite != site:
                    continue
                if rec["kind"] == EV_RULE_BEGIN:
                    if best is None or rec["ts_ns"] >= best["ts_ns"]:
                        best = rec
                        ended = False
                elif rec["kind"] == EV_RULE_END and best is not None:
                    if rec["code"] == best["code"] and rec["ts_ns"] >= best["ts_ns"]:
                        ended = True
        if best is None:
            return None
        return self.rule_name(best["code"]), ended


def load_blackbox(path: str) -> Blackbox:
    """Parse a ``*.blackbox`` file, raising
    :class:`~repro.errors.BlackboxCorruptError` on any framing, header or
    ring-structure damage (torn *records* are tolerated and counted)."""
    try:
        raw = open(path, "rb").read()
    except OSError as exc:
        raise BlackboxCorruptError(f"cannot read blackbox {path!r}: {exc}") from exc
    if len(raw) < len(BLACKBOX_MAGIC) + 8 or not raw.startswith(BLACKBOX_MAGIC):
        raise BlackboxCorruptError(f"{path!r} is not a blackbox dump (bad magic)")
    (hlen,) = struct.unpack_from("<Q", raw, len(BLACKBOX_MAGIC))
    off = len(BLACKBOX_MAGIC) + 8
    if off + hlen > len(raw):
        raise BlackboxCorruptError(f"{path!r}: truncated header")
    try:
        header = json.loads(raw[off:off + hlen].decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise BlackboxCorruptError(f"{path!r}: corrupt header JSON: {exc}") from exc
    off += hlen
    rings: List[RingDump] = []
    for entry in header.get("rings", []):
        length = int(entry.get("length", 0))
        blob = raw[off:off + length]
        if len(blob) != length:
            raise BlackboxCorruptError(f"{path!r}: truncated ring blob")
        off += length
        try:
            decoded = decode_ring(blob)
        except ValueError as exc:
            raise BlackboxCorruptError(f"{path!r}: {exc}") from exc
        rings.append(
            RingDump(
                site=int(entry.get("site", decoded["site"])),
                name=entry.get("name"),
                capacity=decoded["capacity"],
                seq=decoded["seq"],
                dropped=decoded["dropped"],
                torn=decoded["torn"],
                records=decoded["records"],
            )
        )
    return Blackbox(header, rings)


# -- skew analytics -----------------------------------------------------------


def _percentile(sorted_vals: Sequence[float], q: float) -> float:
    if not sorted_vals:
        return 0.0
    if len(sorted_vals) == 1:
        return sorted_vals[0]
    pos = q * (len(sorted_vals) - 1)
    lo = int(pos)
    hi = min(lo + 1, len(sorted_vals) - 1)
    frac = pos - lo
    return sorted_vals[lo] * (1 - frac) + sorted_vals[hi] * frac


def skew_report(bb: Blackbox, registry: Any = None) -> Dict[str, Any]:
    """Per-site / per-rule skew analytics over one recording.

    - ``phases``: p50/p95/mean/max duration (seconds) per engine phase,
      from the main ring's ``phase`` records.
    - ``sites``: per worker site, busy seconds (match-request→reply),
      cycles served, mean busy per cycle, and ``skew_ratio`` — the site's
      mean busy time over the all-site mean (1.0 = perfectly balanced).
      Sites running the vectorized probe kernel additionally report
      ``vector_scan_rows`` / ``vector_materialized`` /
      ``vector_fallback_probes`` totals, so match time can be attributed
      to column scanning vs WME decoding.
    - ``rules``: per rule, total evaluation + match nanoseconds and
      ``share`` of the all-rule total.

    When ``registry`` (a MetricsRegistry) is given, exports
    ``parulel_site_skew_ratio{site=...}`` and
    ``parulel_rule_time_share{rule=...}`` gauges.
    """
    phase_durs: Dict[str, List[float]] = {}
    rule_ns: Dict[str, int] = {}
    main = bb.main
    if main is not None:
        for rec in main.records:
            if rec["kind"] == EV_PHASE:
                phase_durs.setdefault(bb.phase_name(rec["code"]), []).append(
                    rec["a"] / 1e9
                )
            elif rec["kind"] == EV_FIRE:
                name = bb.rule_name(rec["code"])
                rule_ns[name] = rule_ns.get(name, 0) + max(rec["a"], 0)

    # Worker-side busy windows: request→reply per cycle, plus per-rule
    # match time from rule-begin→rule-end/next-record deltas.
    site_busy: Dict[int, List[float]] = {}
    site_vector: Dict[int, Dict[str, int]] = {}
    for ring in bb.rings:
        if ring.site < 0:
            continue
        req_ts: Optional[int] = None
        begin: Optional[Dict[str, int]] = None
        for rec in ring.records:
            kind = rec["kind"]
            if kind == EV_VECTOR_SCAN:
                vec = site_vector.setdefault(
                    ring.site,
                    {
                        "vector_scan_rows": 0,
                        "vector_materialized": 0,
                        "vector_fallback_probes": 0,
                    },
                )
                vec["vector_scan_rows"] += max(rec["a"], 0)
                vec["vector_materialized"] += max(rec["b"], 0)
                vec["vector_fallback_probes"] += max(rec["code"], 0)
                continue
            if begin is not None and kind in (EV_RULE_END, EV_RULE_BEGIN, EV_MATCH_REPLY):
                name = bb.rule_name(begin["code"])
                rule_ns[name] = rule_ns.get(name, 0) + max(
                    rec["ts_ns"] - begin["ts_ns"], 0
                )
                begin = None
            if kind == EV_MATCH_REQ:
                req_ts = rec["ts_ns"]
            elif kind == EV_RULE_BEGIN:
                begin = rec
            elif kind == EV_MATCH_REPLY and req_ts is not None:
                site_busy.setdefault(ring.site, []).append(
                    max(rec["ts_ns"] - req_ts, 0) / 1e9
                )
                req_ts = None

    # Threaded pools tag engine-ring records with a site instead of
    # writing a separate ring; fold those in the same way.
    if main is not None:
        req_by_site: Dict[int, int] = {}
        for rec in main.records:
            site = rec["site"]
            if site < 0:
                continue
            if rec["kind"] == EV_MATCH_REQ:
                req_by_site[site] = rec["ts_ns"]
            elif rec["kind"] == EV_MATCH_REPLY and site in req_by_site:
                site_busy.setdefault(site, []).append(
                    max(rec["ts_ns"] - req_by_site.pop(site), 0) / 1e9
                )

    phases = {
        name: {
            "n": len(vals),
            "p50": _percentile(sorted(vals), 0.50),
            "p95": _percentile(sorted(vals), 0.95),
            "mean": sum(vals) / len(vals),
            "max": max(vals),
        }
        for name, vals in phase_durs.items()
        if vals
    }

    site_mean = {
        site: (sum(vals) / len(vals)) for site, vals in site_busy.items() if vals
    }
    overall = (sum(site_mean.values()) / len(site_mean)) if site_mean else 0.0
    sites = {
        site: {
            "cycles": len(site_busy[site]),
            "busy_s": sum(site_busy[site]),
            "mean_busy_s": mean,
            "skew_ratio": (mean / overall) if overall > 0 else 1.0,
            **site_vector.get(site, {}),
        }
        for site, mean in sorted(site_mean.items())
    }

    total_rule_ns = sum(rule_ns.values())
    rules = {
        name: {
            "total_ns": ns,
            "share": (ns / total_rule_ns) if total_rule_ns else 0.0,
        }
        for name, ns in sorted(rule_ns.items(), key=lambda kv: -kv[1])
    }

    report = {
        "reason": bb.reason,
        "phases": phases,
        "sites": sites,
        "rules": rules,
        "rings": [
            {
                "site": r.site,
                "records": len(r.records),
                "dropped": r.dropped,
                "torn": r.torn,
            }
            for r in bb.rings
        ],
    }
    if registry is not None:
        for site, stats in sites.items():
            registry.set_gauge(SITE_SKEW_RATIO, stats["skew_ratio"], site=str(site))
        for name, stats in rules.items():
            registry.set_gauge(RULE_TIME_SHARE, stats["share"], rule=name)
    return report


# -- diffing ------------------------------------------------------------------


@dataclass
class DiffResult:
    """The first diverging event between two recordings."""

    index: int
    left: Optional[Dict[str, int]]
    right: Optional[Dict[str, int]]
    left_text: str
    right_text: str


def _projection(rec: Dict[str, int]) -> Tuple[int, ...]:
    """The deterministic shadow of a record: everything except wall-clock
    durations and timestamps, which legitimately differ across runs."""
    kind = rec["kind"]
    if kind in (EV_PHASE, EV_FIRE):
        return (kind, rec["cycle"], rec["code"])
    if kind == EV_DUMP:
        return (kind,)
    return (kind, rec["cycle"], rec["code"], rec["a"], rec["b"])


def diff_blackbox(left: Blackbox, right: Blackbox) -> Optional[DiffResult]:
    """First diverging engine-ring event between two recordings, or
    ``None`` when their deterministic projections are identical. Worker
    rings are excluded — scheduling jitter legitimately reorders them; the
    engine ring is the canonical, deterministically ordered record."""
    lmain, rmain = left.main, right.main
    lrecs = lmain.records if lmain else []
    rrecs = rmain.records if rmain else []
    for i in range(max(len(lrecs), len(rrecs))):
        lrec = lrecs[i] if i < len(lrecs) else None
        rrec = rrecs[i] if i < len(rrecs) else None
        lproj = _projection(lrec) if lrec else None
        rproj = _projection(rrec) if rrec else None
        if lproj != rproj:
            return DiffResult(
                index=i,
                left=lrec,
                right=rrec,
                left_text=left.describe(lrec) if lrec else "<end of recording>",
                right_text=right.describe(rrec) if rrec else "<end of recording>",
            )
    return None
