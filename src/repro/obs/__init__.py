"""Unified observability: tracing, metrics, and per-rule profiling.

PARULEL's argument is about *where the cycle time goes* — match vs.
redaction vs. act vs. communication. This package is the layer that makes
every execution substrate show its work:

- :mod:`repro.obs.trace` — monotonic-clock spans and instants on named
  lanes (engine, worker processes, distributed sites, the simulated
  network), thread/process-safe, exported as Chrome trace-event JSON
  (open it in Perfetto or ``chrome://tracing``) or JSONL;
- :mod:`repro.obs.metrics` — a labelled counter/gauge/histogram registry
  with JSON snapshots and Prometheus text exposition, with exact
  cross-process merging for worker-shipped counts;
- :mod:`repro.obs.profile` — the per-rule hot-rule table
  (``parulel profile``).

- :mod:`repro.obs.flightrec` / :mod:`repro.obs.blackbox` — the always-on
  black-box flight recorder: bounded shared-memory event rings that
  survive worker SIGKILLs, ``*.blackbox`` crash dumps, merged causal
  timelines, per-site/per-rule skew analytics, and recording diffs
  (``parulel blackbox dump/report/diff``);
- :mod:`repro.obs.metrics_http` — one-shot HTTP ``/metrics`` exposition
  for ``parulel run --metrics-port``.

Everything defaults to the no-op :data:`NULL_TRACER` /
:data:`NULL_METRICS` singletons, so the disabled path costs an attribute
load and a branch — the overhead benchmark holds the enabled path under
5% on the ``tc`` and ``manners`` workloads.
"""

from repro.obs.metrics import NULL_METRICS, MetricsRegistry, NullMetrics
from repro.obs.profile import RuleProfile, hot_rule_table, rule_profiles
from repro.obs.trace import (
    NULL_TRACER,
    NullTracer,
    Tracer,
    validate_chrome_trace,
)

__all__ = [
    "Blackbox",
    "FlightRecorder",
    "FlightRing",
    "MetricsHTTPServer",
    "MetricsRegistry",
    "NULL_METRICS",
    "NULL_TRACER",
    "NullMetrics",
    "NullTracer",
    "RuleProfile",
    "Tracer",
    "diff_blackbox",
    "hot_rule_table",
    "load_blackbox",
    "rule_profiles",
    "skew_report",
    "validate_chrome_trace",
]

#: Flight-recorder names resolve lazily (PEP 562) so importing
#: ``repro.obs`` never drags in ``multiprocessing.shared_memory`` — the
#: engine's default dict-WM path stays import-light.
_LAZY = {
    "FlightRecorder": "repro.obs.flightrec",
    "FlightRing": "repro.obs.flightrec",
    "Blackbox": "repro.obs.blackbox",
    "load_blackbox": "repro.obs.blackbox",
    "skew_report": "repro.obs.blackbox",
    "diff_blackbox": "repro.obs.blackbox",
    "MetricsHTTPServer": "repro.obs.metrics_http",
}


def __getattr__(name):
    module = _LAZY.get(name)
    if module is None:
        raise AttributeError(f"module 'repro.obs' has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(module), name)
