"""Unified observability: tracing, metrics, and per-rule profiling.

PARULEL's argument is about *where the cycle time goes* — match vs.
redaction vs. act vs. communication. This package is the layer that makes
every execution substrate show its work:

- :mod:`repro.obs.trace` — monotonic-clock spans and instants on named
  lanes (engine, worker processes, distributed sites, the simulated
  network), thread/process-safe, exported as Chrome trace-event JSON
  (open it in Perfetto or ``chrome://tracing``) or JSONL;
- :mod:`repro.obs.metrics` — a labelled counter/gauge/histogram registry
  with JSON snapshots and Prometheus text exposition, with exact
  cross-process merging for worker-shipped counts;
- :mod:`repro.obs.profile` — the per-rule hot-rule table
  (``parulel profile``).

Everything defaults to the no-op :data:`NULL_TRACER` /
:data:`NULL_METRICS` singletons, so the disabled path costs an attribute
load and a branch — the overhead benchmark holds the enabled path under
5% on the ``tc`` and ``manners`` workloads.
"""

from repro.obs.metrics import NULL_METRICS, MetricsRegistry, NullMetrics
from repro.obs.profile import RuleProfile, hot_rule_table, rule_profiles
from repro.obs.trace import (
    NULL_TRACER,
    NullTracer,
    Tracer,
    validate_chrome_trace,
)

__all__ = [
    "MetricsRegistry",
    "NULL_METRICS",
    "NULL_TRACER",
    "NullMetrics",
    "NullTracer",
    "RuleProfile",
    "Tracer",
    "hot_rule_table",
    "rule_profiles",
    "validate_chrome_trace",
]
