"""One-shot HTTP ``/metrics`` exposition for ``parulel run``.

``--metrics-port`` starts this server on a daemon thread for the duration
of a run; after the run completes the CLI lingers until the first scrape
(or a timeout) and shuts down. It reuses the Prometheus text renderer in
:meth:`repro.obs.metrics.MetricsRegistry.to_prometheus`, so scrape-based
workflows see exactly what ``--metrics-out`` snapshots would contain —
without the file round-trip.
"""

from __future__ import annotations

import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any

__all__ = ["MetricsHTTPServer"]

_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


class MetricsHTTPServer:
    """Serve ``GET /metrics`` from a live MetricsRegistry.

    ``port=0`` binds an ephemeral port (the chosen one is in ``.port``).
    The registry is read at scrape time, so mid-run scrapes see live
    counters and a post-run scrape sees the final merged totals.
    """

    def __init__(self, registry: Any, port: int = 0, host: str = "127.0.0.1") -> None:
        self.registry = registry
        self.scrapes = 0
        self._scraped = threading.Event()
        outer = self

        class _Handler(BaseHTTPRequestHandler):
            def do_GET(self) -> None:  # noqa: N802 - stdlib naming
                if self.path.rstrip("/") not in ("", "/metrics"):
                    self.send_error(404, "only /metrics is served")
                    return
                body = outer.registry.to_prometheus().encode("utf-8")
                self.send_response(200)
                self.send_header("Content-Type", _CONTENT_TYPE)
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)
                outer.scrapes += 1
                outer._scraped.set()

            def log_message(self, fmt: str, *args: Any) -> None:
                pass  # scrapes are not console events

        self._server = ThreadingHTTPServer((host, port), _Handler)
        self._server.daemon_threads = True
        self.host = host
        self.port = self._server.server_address[1]
        self._thread = threading.Thread(
            target=self._server.serve_forever, name="parulel-metrics", daemon=True
        )
        self._thread.start()

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}/metrics"

    def wait_for_scrape(self, timeout: float = 30.0) -> bool:
        """Block until at least one scrape has happened (True) or the
        timeout elapses (False). Returns immediately if already scraped."""
        return self._scraped.wait(timeout)

    def shutdown(self) -> None:
        self._server.shutdown()
        self._server.server_close()
        self._thread.join(timeout=5.0)
