"""The parallel substrate: what the paper ran on hardware, simulated.

PARULEL was evaluated on real multiprocessors; this reproduction substitutes
a deterministic simulation (see DESIGN.md §2):

- :mod:`repro.parallel.costmodel` — converts the match engines' operation
  counters into abstract time units (per-probe, per-token, per-fire,
  broadcast and barrier costs);
- :mod:`repro.parallel.partition` — rule-to-site assignment (round-robin
  and LPT on profiled weights) and **copy-and-constrain**, the paper's
  data-parallel transformation that splits one hot rule into k copies
  constrained to disjoint data partitions;
- :mod:`repro.parallel.simmachine` — :class:`SimMachine`, a barrier-
  synchronized P-site execution of the PARULEL cycle with one match engine
  per site; per-cycle time is the slowest site (makespan) plus serial
  redaction and barrier costs. Speedup(P) = T(1)/T(P) — Figure 1/2;
- :mod:`repro.parallel.threaded` — a real ``ThreadPoolExecutor`` match
  fan-out, included to exercise genuine concurrency and to document the
  GIL ceiling (Table 4);
- :mod:`repro.parallel.process` — the escape from that ceiling: a
  persistent ``multiprocessing`` worker pool with per-site WM replicas
  kept current by delta shipping (Table 4's ``process`` rows);
- :mod:`repro.parallel.stats` — speedup/efficiency series helpers.
"""

from repro.parallel.autotune import TunedPlan, autotune, hottest_rule
from repro.parallel.costmodel import CostModel
from repro.parallel.distributed import DistResult, DistributedMachine, NetworkModel
from repro.parallel.partition import (
    Assignment,
    copy_and_constrain,
    copy_and_constrain_program,
    hash_partitions,
    lpt_assignment,
    profile_rule_weights,
    rehost_assignment,
    round_robin_assignment,
)
from repro.parallel.process import ProcessMatchPool, ProcessMatcher
from repro.parallel.simmachine import SimMachine, SimResult
from repro.parallel.stats import SpeedupSeries
from repro.parallel.threaded import ThreadedMatchPool

__all__ = [
    "Assignment",
    "CostModel",
    "DistResult",
    "DistributedMachine",
    "NetworkModel",
    "ProcessMatchPool",
    "ProcessMatcher",
    "SimMachine",
    "SimResult",
    "SpeedupSeries",
    "ThreadedMatchPool",
    "TunedPlan",
    "autotune",
    "hottest_rule",
    "copy_and_constrain",
    "copy_and_constrain_program",
    "hash_partitions",
    "lpt_assignment",
    "profile_rule_weights",
    "rehost_assignment",
    "round_robin_assignment",
]
