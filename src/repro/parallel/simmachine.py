"""SimMachine: a deterministic P-site simulation of PARULEL's cycle.

Execution model (mirrors the shared-memory multiprocessor the paper used):

- every site holds the **full working memory replica** (changes are
  broadcast at end of cycle) and the match state for **its assigned rules
  only**;
- each cycle, sites match and fire *in parallel*; the cycle's parallel time
  is the **makespan** — the slowest site's (match + fire + broadcast
  application) work;
- the **meta level runs serially** (on a master) between match and fire, as
  does the final delta merge — these are the cycle's sequential fraction,
  which is what bounds speedup à la Amdahl;
- a **barrier** charge per cycle models synchronization.

Implementation: the sites share one real :class:`~repro.wm.memory.WorkingMemory`
(that *is* the replica abstraction — WM listeners deliver every change to
every site's matcher, and the cost model charges each site for the
deliveries), and each site has its own matcher over its own rules. The
functional result of a SimMachine run is therefore **bit-identical to a
1-engine ParulelEngine run** of the same program — asserted by tests — while
the timing model yields Figure 1/2's speedup curves deterministically.
"""

from __future__ import annotations

import time
from collections import Counter
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Set, Tuple

from repro.errors import CycleLimitExceeded
from repro.core.actions import ActionEvaluator, InstantiationDelta
from repro.core.delta import InterferencePolicy, merge_deltas
from repro.core.redaction import MetaLevel
from repro.lang.ast import Program, Value
from repro.match.instantiation import InstKey, Instantiation
from repro.match.interface import Matcher, create_matcher
from repro.match.compile import compile_rules
from repro.parallel.costmodel import CostModel
from repro.parallel.partition import Assignment, round_robin_assignment
from repro.wm.memory import WorkingMemory
from repro.wm.template import TemplateRegistry

__all__ = ["SimMachine", "SimResult", "SiteCycle"]


@dataclass
class SiteCycle:
    """One site's charged work within one cycle (ticks)."""

    match: float = 0.0
    fire: float = 0.0
    broadcast: float = 0.0

    @property
    def total(self) -> float:
        return self.match + self.fire + self.broadcast


@dataclass
class SimResult:
    """Timing and outcome of a simulated run."""

    n_sites: int
    cycles: int
    firings: int
    reason: str
    #: Sum over cycles of the slowest site's work (the parallel part).
    parallel_ticks: float
    #: Serial part: redaction + merge + barriers.
    serial_ticks: float
    #: Total WM-update messages delivered to sites (broadcast: every change
    #: to every site; multicast: only to sites whose rules read the class).
    messages: int = 0
    #: Per-cycle makespans (parallel part only).
    makespans: List[float] = field(default_factory=list)
    #: Per-site total work across the run (load-balance diagnostics).
    site_totals: List[float] = field(default_factory=list)
    output: List[str] = field(default_factory=list)

    @property
    def total_ticks(self) -> float:
        return self.parallel_ticks + self.serial_ticks

    @property
    def total_work(self) -> float:
        """Sum of all sites' work — what one site would have done (modulo
        partitioning overheads)."""
        return sum(self.site_totals)

    @property
    def load_imbalance(self) -> float:
        """max site load / mean site load (1.0 = perfectly balanced)."""
        if not self.site_totals or not any(self.site_totals):
            return 1.0
        mean = sum(self.site_totals) / len(self.site_totals)
        return max(self.site_totals) / mean if mean else 1.0


class SimMachine:
    """Barrier-synchronized multi-site execution of a PARULEL program."""

    def __init__(
        self,
        program: Program,
        n_sites: int,
        assignment: Optional[Assignment] = None,
        cost_model: Optional[CostModel] = None,
        matcher: str = "rete",
        interference: InterferencePolicy = InterferencePolicy.ERROR,
        dedupe_makes: bool = True,
        host_functions: Optional[Mapping[str, Callable]] = None,
        multicast: bool = False,
        indexed: bool = True,
    ) -> None:
        if n_sites < 1:
            raise ValueError("need at least one site")
        self.program = program
        self.n_sites = n_sites
        self.assignment = assignment or round_robin_assignment(program.rules, n_sites)
        self.assignment.validate(program.rules)
        self.cost = cost_model or CostModel()
        self.interference = InterferencePolicy.of(interference)
        self.dedupe_makes = dedupe_makes
        #: PARADISER-style interest-based update delivery: a WM change is
        #: sent only to sites whose rules *read* the changed class, instead
        #: of broadcast to every replica. Functionally identical (the real
        #: shared WorkingMemory still notifies every matcher — matchers
        #: ignore classes outside their alpha index anyway); only the
        #: communication charges differ. Ablation A4 measures the gap.
        self.multicast = multicast

        self.wm = WorkingMemory(TemplateRegistry.from_program(program))
        self.evaluator = ActionEvaluator(host_functions)
        self.site_matchers: List[Matcher] = []
        for site in range(n_sites):
            rules = self.assignment.rules_of_site(site, program.rules)
            self.site_matchers.append(
                create_matcher(matcher, rules, self.wm, indexed=indexed)
            )
        self.meta = MetaLevel(program.meta_rules, self.wm, self.evaluator)
        # Per-site read interests (class names) for multicast accounting.
        self._site_interests: List[frozenset] = []
        for site in range(n_sites):
            rules = self.assignment.rules_of_site(site, program.rules)
            classes = set()
            for compiled in compile_rules(rules):
                for ce in compiled.ces:
                    classes.add(ce.class_name)
            self._site_interests.append(frozenset(classes))
        self.fired: Set[InstKey] = set()
        self.output: List[str] = []
        self._site_op_marks = [Counter() for _ in range(n_sites)]
        self._meta_op_mark: Counter = Counter()
        self._halted = False

    # -- workload ---------------------------------------------------------------

    def make(self, class_name: str, attrs: Optional[Mapping[str, Value]] = None, **kw: Value):
        """Assert an initial WME (charged as load-phase match work)."""
        return self.wm.make(class_name, attrs, **kw)

    # -- accounting ---------------------------------------------------------------

    def _site_ops_delta(self, site: int) -> Counter:
        """Match-op counters accrued at a site since last checkpoint."""
        now = self.site_matchers[site].stats.snapshot()
        delta = now - self._site_op_marks[site]
        self._site_op_marks[site] = now
        return delta

    def _meta_ops_delta(self) -> Counter:
        if self.meta.matcher is None:
            return Counter()
        now = self.meta.matcher.stats.snapshot()
        delta = now - self._meta_op_mark
        self._meta_op_mark = now
        return delta

    # -- execution -----------------------------------------------------------------

    def run(self, max_cycles: int = 100_000) -> SimResult:
        """Run to quiescence/halt, charging time per the cost model."""
        makespans: List[float] = []
        site_totals = [0.0] * self.n_sites
        serial = 0.0
        cycles = 0
        firings = 0
        messages = 0
        reason = "quiescence"

        # Load phase: initial WMEs were matched at construction/make time.
        # Charge each site its accrued ops as a cycle-0 parallel phase.
        load = [
            self.cost.match_cost(self._site_ops_delta(s)) for s in range(self.n_sites)
        ]
        self._meta_ops_delta()  # baseline the meta counters too
        if any(load):
            makespans.append(max(load))
            for s, t in enumerate(load):
                site_totals[s] += t

        while True:
            if cycles >= max_cycles:
                raise CycleLimitExceeded(
                    f"simulated run exceeded {max_cycles} cycles"
                )
            # ---- parallel match: collect per-site candidates --------------
            site_candidates: List[List[Instantiation]] = []
            for matcher in self.site_matchers:
                cands = [
                    i for i in matcher.instantiations() if i.key not in self.fired
                ]
                site_candidates.append(cands)
            candidates: List[Instantiation] = []
            inst_site: Dict[InstKey, int] = {}
            for site, cands in enumerate(site_candidates):
                for inst in cands:
                    candidates.append(inst)
                    inst_site[inst.key] = site
            if not candidates:
                reason = "quiescence"
                break
            cycles += 1

            # ---- serial redaction (master) --------------------------------
            survivors, red_report = self.meta.redact(candidates)
            self.output.extend(self.meta.writes)
            serial += self.cost.redaction_cost(
                self._meta_ops_delta(), red_report.meta_firings
            )
            # Redaction reifications touched the shared WM; that match work
            # is the meta level's, but each site's matcher also saw the
            # (irrelevant) class — charge it to the sites as broadcast-ish
            # match work in the normal site delta below.

            if not survivors:
                reason = "redaction-quiescence"
                break

            # ---- parallel fire ---------------------------------------------
            deltas: List[InstantiationDelta] = []
            fire_ticks = [0.0] * self.n_sites
            for inst in survivors:
                self.fired.add(inst.key)
                deltas.append(self.evaluator.evaluate(inst))
                fire_ticks[inst_site[inst.key]] += self.cost.fire
            firings += len(survivors)

            merged = merge_deltas(
                deltas, policy=self.interference, dedupe_makes=self.dedupe_makes
            )
            # Merge is serial master work; charge per update merged.
            serial += self.cost.wm_broadcast * 0.5 * merged.size

            # ---- apply + broadcast ------------------------------------------
            for wme in merged.removes:
                self.wm.remove(wme)
            for class_name, attrs in merged.makes:
                self.wm.make(class_name, attrs)
            for delta in deltas:
                self.evaluator.run_calls(delta)
            self.output.extend(merged.writes)

            # ---- per-site cycle time -----------------------------------------
            if self.multicast:
                changed = [w.class_name for w in merged.removes] + [
                    cls for cls, _attrs in merged.makes
                ]
            cycle_site_ticks = []
            for s in range(self.n_sites):
                if self.multicast:
                    relevant = sum(
                        1 for cls in changed if cls in self._site_interests[s]
                    )
                else:
                    relevant = merged.size
                messages += relevant
                bcast = self.cost.broadcast_cost(relevant)
                match_ticks = self.cost.match_cost(self._site_ops_delta(s))
                t = match_ticks + fire_ticks[s] + bcast
                cycle_site_ticks.append(t)
                site_totals[s] += t
            makespans.append(max(cycle_site_ticks))
            serial += self.cost.barrier

            if merged.halt or self.meta.halt_requested:
                reason = "halt"
                break

        return SimResult(
            n_sites=self.n_sites,
            cycles=cycles,
            firings=firings,
            reason=reason,
            messages=messages,
            parallel_ticks=sum(makespans),
            serial_ticks=serial,
            makespans=makespans,
            site_totals=site_totals,
            output=list(self.output),
        )
