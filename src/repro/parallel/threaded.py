"""Real-thread match fan-out (Table 4: the GIL ceiling, measured).

The reproduction bands for this paper note that CPython's GIL hides the
data-parallel firing benefits a real multiprocessor shows. Rather than skip
the experiment, this module *measures* that: :class:`ThreadedMatchPool`
computes the conflict set by fanning per-site naive re-matching out to a
``ThreadPoolExecutor`` — an embarrassingly parallel, read-only workload that
WOULD scale on the paper's hardware — and Table 4 reports the (lack of)
wall-clock speedup with 1..N threads.

The pool is semantically interchangeable with the incremental matchers (it
returns the same conflict sets; differential tests assert this), just slow —
it exists to exercise a genuine concurrent code path, not to win.
"""

from __future__ import annotations

import time
from concurrent.futures import ThreadPoolExecutor
from typing import Dict, List, Optional, Sequence

from repro.lang.ast import Program, Rule
from repro.match.alphaindex import AlphaCache
from repro.match.compile import CompiledRule, compile_rules
from repro.match.instantiation import Instantiation
from repro.match.join import enumerate_matches
from repro.obs.metrics import NULL_METRICS
from repro.obs.profile import RULE_MATCH_SECONDS
from repro.obs.trace import NULL_TRACER
from repro.parallel.partition import Assignment, round_robin_assignment
from repro.wm.memory import WorkingMemory

__all__ = ["ThreadedMatchPool"]


class ThreadedMatchPool:
    """Computes conflict sets with one worker thread per site.

    Working memory is read-only during :meth:`conflict_set` — the caller
    must not mutate it concurrently (the engines never do: match and apply
    are separate phases of the cycle).

    With a ``tracer``/``metrics`` attached, each site's match runs under a
    span on its own ``thread-<site>`` lane (the tracer is thread-safe, and
    the lanes make the GIL serialization this module measures *visible*:
    the spans overlap in wall-clock but their work interleaves).

    With a ``flightrec`` attached, each site journals site-tagged
    request/reply records straight into the *parent* ring (same process,
    no shared-memory ring needed; the ring's append lock makes this
    thread-safe). The skew report folds site-tagged parent-ring records
    exactly like per-worker rings, so thread pools get busy-window
    analytics for free.
    """

    def __init__(
        self,
        rules: Sequence[Rule],
        wm: WorkingMemory,
        n_threads: int,
        assignment: Optional[Assignment] = None,
        tracer=None,
        metrics=None,
        flightrec=None,
        indexed: bool = True,
    ) -> None:
        if n_threads < 1:
            raise ValueError("need at least one thread")
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.metrics = metrics if metrics is not None else NULL_METRICS
        self._flightrec = flightrec
        self._cycle = 0
        self.wm = wm
        self.indexed = indexed
        # One shared alpha cache across all sites, kept current via WM
        # listener. Read-mostly: concurrent lazy priming from worker
        # threads is benign (identical contents, GIL-atomic installs).
        self._alpha: Optional[AlphaCache] = None
        if indexed:
            self._alpha = AlphaCache(wm)
            self._alpha.attach()
        self.n_threads = n_threads
        self.assignment = assignment or round_robin_assignment(rules, n_threads)
        compiled = compile_rules(rules)
        self._site_rules: List[List[CompiledRule]] = [[] for _ in range(n_threads)]
        for cr in compiled:
            self._site_rules[self.assignment.site_of[cr.name]].append(cr)
        #: Sites that carry at least one rule — the only ones worth a
        #: future (with ``n_threads > len(rules)`` the rest are no-ops).
        self.active_sites = tuple(
            s for s in range(n_threads) if self._site_rules[s]
        )
        self._pool = ThreadPoolExecutor(max_workers=max(1, len(self.active_sites)))

    def _match_site(self, site: int) -> List[Instantiation]:
        out: List[Instantiation] = []
        obs = self.metrics.enabled
        fr = self._flightrec
        if fr is not None:
            # Literal kind codes: EV_MATCH_REQ/EV_MATCH_REPLY (22/25) —
            # this module stays importable without repro.obs.flightrec.
            fr.record(22, self._cycle, site=site)
        with self.tracer.span(
            "match", lane=f"thread-{site}", cycle=self._cycle
        ):
            for compiled in self._site_rules[site]:
                t0 = time.perf_counter() if obs else 0.0
                out.extend(
                    enumerate_matches(
                        compiled,
                        self.wm,
                        alpha_source=self._alpha,
                        indexed=self.indexed,
                    )
                )
                if obs:
                    self.metrics.observe(
                        RULE_MATCH_SECONDS,
                        time.perf_counter() - t0,
                        rule=compiled.name,
                        site=site,
                    )
        if fr is not None:
            fr.record(25, self._cycle, a=len(out), site=site)
        return out

    def conflict_set(self) -> List[Instantiation]:
        """Full conflict set, deterministic order (site 0's rules first)."""
        self._cycle += 1
        futures = [
            self._pool.submit(self._match_site, site)
            for site in self.active_sites
        ]
        merged: List[Instantiation] = []
        for fut in futures:
            merged.extend(fut.result())
        return merged

    def close(self) -> None:
        if self._alpha is not None:
            self._alpha.detach()
        self._pool.shutdown(wait=True)

    def __enter__(self) -> "ThreadedMatchPool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
