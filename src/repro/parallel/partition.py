"""Rule-to-site assignment and copy-and-constrain.

**Assignment** maps each rule name to a site in ``0..P-1``. Two policies:

- :func:`round_robin_assignment` — the trivial baseline;
- :func:`lpt_assignment` — Longest-Processing-Time-first bin packing on
  per-rule weights, usually from :func:`profile_rule_weights` (a 1-site
  calibration run that measures each rule's actual match work on a sample
  workload). Ablation A1 compares the two.

**Copy-and-constrain** (Stolfo's data-parallel transformation) replicates
one rule k ways, adding to a chosen condition element a membership
constraint on a partition of the attribute's value domain::

    extend:  (path ^src <a> ^dst <b>) (edge ...) -->  ...
    ⇒ extend@cc0 with (path ^src << n0 n3 n6 >> ^src <a> ...)
      extend@cc1 with (path ^src << n1 n4 n7 >> ^src <a> ...)
      ...

Because the partitions are disjoint and cover the domain, the union of the
copies' instantiations is exactly the original rule's, but the match work
for that rule spreads over the sites carrying the copies (Figure 2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

import warnings

from repro.errors import MatchError, PartitionConstraintError
from repro.lang.ast import (
    ConditionElement,
    ConjunctiveTest,
    DisjunctionTest,
    MetaRule,
    Program,
    Rule,
    Test,
    Value,
)
from repro.match.stats import COUNTER_NAMES

__all__ = [
    "Assignment",
    "ASSIGNMENT_POLICIES",
    "resolve_assignment",
    "round_robin_assignment",
    "lpt_assignment",
    "profile_rule_weights",
    "rehost_assignment",
    "hash_partitions",
    "copy_and_constrain",
    "copy_and_constrain_program",
]


@dataclass(frozen=True)
class Assignment:
    """Immutable rule-name → site mapping for ``n_sites`` sites."""

    n_sites: int
    site_of: Mapping[str, int]

    def rules_of_site(self, site: int, rules: Sequence[Rule]) -> List[Rule]:
        return [r for r in rules if self.site_of[r.name] == site]

    def validate(self, rules: Sequence[Rule]) -> None:
        for rule in rules:
            site = self.site_of.get(rule.name)
            if site is None:
                raise ValueError(f"rule {rule.name!r} has no site assignment")
            if not (0 <= site < self.n_sites):
                raise ValueError(
                    f"rule {rule.name!r} assigned to site {site}, "
                    f"but there are only {self.n_sites} sites"
                )


#: Assignment policy names :func:`resolve_assignment` accepts.
ASSIGNMENT_POLICIES = ("round-robin", "analysis")


def resolve_assignment(
    spec: "Optional[Assignment | str]", rules: Sequence[Rule], n_sites: int
) -> Assignment:
    """Turn an assignment *spec* into a concrete :class:`Assignment`.

    ``None``/"round-robin" → :func:`round_robin_assignment`; "analysis" →
    the static analyzer's connectivity-minimizing partition
    (:func:`repro.analysis.advisor.analysis_assignment`); an
    :class:`Assignment` passes through untouched. This is the one place
    the distributed machine, the process pool and the CLI translate
    policy names, so they cannot disagree.
    """
    if isinstance(spec, Assignment):
        return spec
    if spec is None or spec == "round-robin":
        return round_robin_assignment(rules, n_sites)
    if spec == "analysis":
        # Local import: repro.analysis builds on this module's Assignment.
        from repro.analysis.advisor import analysis_assignment

        return analysis_assignment(rules, n_sites)
    raise ValueError(
        f"unknown assignment policy {spec!r} "
        f"(expected one of {', '.join(ASSIGNMENT_POLICIES)})"
    )


def round_robin_assignment(rules: Sequence[Rule], n_sites: int) -> Assignment:
    """Rule *i* goes to site ``i mod P``."""
    if n_sites < 1:
        raise ValueError("need at least one site")
    return Assignment(
        n_sites=n_sites,
        site_of={r.name: i % n_sites for i, r in enumerate(rules)},
    )


def lpt_assignment(
    rules: Sequence[Rule], n_sites: int, weights: Mapping[str, float]
) -> Assignment:
    """Longest-Processing-Time-first: heaviest rule to the lightest site.

    A missing weight counts as 1.0 (every rule costs *something* — at
    minimum its alpha tests).
    """
    if n_sites < 1:
        raise ValueError("need at least one site")
    loads = [0.0] * n_sites
    site_of: Dict[str, int] = {}
    ordered = sorted(
        rules, key=lambda r: (-weights.get(r.name, 1.0), r.name)
    )
    for rule in ordered:
        site = min(range(n_sites), key=lambda s: (loads[s], s))
        site_of[rule.name] = site
        loads[site] += max(weights.get(rule.name, 1.0), 1.0)
    return Assignment(n_sites=n_sites, site_of=site_of)


def rehost_assignment(
    base: Assignment, dead_sites: Sequence[int], rules: Sequence[Rule]
) -> Assignment:
    """Hosting map after site failures: the base assignment with every dead
    site's rules dealt round-robin across the surviving sites.

    Deterministic (survivors in ascending site order, orphaned rules in
    program order) so every master computes the identical re-hosting, and
    *stable*: rules on surviving sites never move. Site 0 — the master —
    must survive; recovery from a dead master is out of scope.
    """
    dead = set(dead_sites)
    if 0 in dead:
        raise ValueError("site 0 (the master) cannot be re-hosted away")
    survivors = [s for s in range(base.n_sites) if s not in dead]
    site_of: Dict[str, int] = {}
    orphan = 0
    for rule in rules:
        home = base.site_of[rule.name]
        if home in dead:
            site_of[rule.name] = survivors[orphan % len(survivors)]
            orphan += 1
        else:
            site_of[rule.name] = home
    return Assignment(n_sites=base.n_sites, site_of=site_of)


def profile_rule_weights(
    program: Program,
    setup: Callable,
    matcher: str = "rete",
    max_cycles: int = 10_000,
) -> Dict[str, float]:
    """Calibration run: execute the program once on one site and return each
    rule's total match-operation count as its weight.

    ``setup(engine)`` asserts the sample workload's initial WMEs.
    """
    from repro.core.engine import EngineConfig, ParulelEngine  # local: no cycle

    engine = ParulelEngine(program, EngineConfig(matcher=matcher))
    setup(engine)
    engine.run(max_cycles=max_cycles)
    stats = engine.matcher.stats
    return {
        rule.name: float(max(stats.rule_total(rule.name, COUNTER_NAMES), 1))
        for rule in program.rules
    }


# ---------------------------------------------------------------------------
# Copy-and-constrain
# ---------------------------------------------------------------------------


def hash_partitions(domain: Sequence[Value], k: int) -> List[Tuple[Value, ...]]:
    """Split a value domain into k balanced, disjoint, covering classes.

    Values are dealt round-robin in domain order — deterministic, and
    balanced to within one element.
    """
    if k < 1:
        raise ValueError("need at least one partition")
    parts: List[List[Value]] = [[] for _ in range(k)]
    for i, value in enumerate(domain):
        parts[i % k].append(value)
    return [tuple(p) for p in parts]


def _constrain_test(existing: Optional[Test], alternatives: Tuple[Value, ...]) -> Test:
    """Conjoin a membership constraint onto whatever test the attribute has."""
    membership = DisjunctionTest(alternatives=alternatives)
    if existing is None:
        return membership
    if isinstance(existing, ConjunctiveTest):
        return ConjunctiveTest(tests=existing.tests + (membership,))
    return ConjunctiveTest(tests=(existing, membership))


def copy_and_constrain(
    rule: Rule,
    ce_index: int,
    attr: str,
    partitions: Sequence[Sequence[Value]],
) -> List[Rule]:
    """Produce one constrained copy of ``rule`` per partition.

    ``ce_index`` is 1-based (as in ``modify``); the CE must be positive.
    Copies are named ``<rule>@cc<i>``. The partitions must be disjoint and
    cover the attribute's runtime domain for the transformation to preserve
    semantics; disjointness is checked here, coverage by the caller.

    Each copy's constrained CE is also checked for satisfiability: a
    membership partition that conjoins with an existing test on the same
    attribute into a contradiction (e.g. partitioning ``^src`` on a CE that
    already tests ``^src a`` with a partition not containing ``a``) would
    silently drop instantiations, so it raises
    :class:`~repro.errors.PartitionConstraintError` naming the rule and
    attribute instead. Empty partitions (k exceeding the domain size) stay
    legal — an empty membership test is inert, not contradictory.

    Finally the commute detector is consulted on the produced copies: a
    pair of copies proven RACES (their match sets overlap and the firings
    interfere) earns a ``UserWarning`` — the split is still returned, since
    meta-rules may arbitrate the overlap at runtime.
    """
    if not (1 <= ce_index <= len(rule.conditions)):
        raise MatchError(
            f"copy_and_constrain: CE index {ce_index} out of range for "
            f"rule {rule.name!r}"
        )
    ce = rule.conditions[ce_index - 1]
    if ce.negated:
        raise MatchError(
            "copy_and_constrain: cannot constrain a negated condition element"
        )
    seen: set = set()
    for part in partitions:
        for v in part:
            if v in seen:
                raise MatchError(
                    f"copy_and_constrain: value {v!r} appears in two partitions"
                )
            seen.add(v)

    copies: List[Rule] = []
    for i, part in enumerate(partitions):
        tests = dict(ce.tests)
        new_test = _constrain_test(tests.get(attr), tuple(part))
        new_pairs: List[Tuple[str, Test]] = []
        replaced = False
        for a, t in ce.tests:
            if a == attr:
                new_pairs.append((a, new_test))
                replaced = True
            else:
                new_pairs.append((a, t))
        if not replaced:
            new_pairs.append((attr, new_test))
        new_ce = ConditionElement(
            class_name=ce.class_name, tests=tuple(new_pairs), negated=False
        )
        if part:
            _check_partition_satisfiable(rule, new_ce, attr)
        conditions = (
            rule.conditions[: ce_index - 1] + (new_ce,) + rule.conditions[ce_index:]
        )
        cls = MetaRule if isinstance(rule, MetaRule) else Rule
        copies.append(
            cls(
                name=f"{rule.name}@cc{i}",
                conditions=conditions,
                actions=rule.actions,
                salience=rule.salience,
            )
        )
    _warn_on_racing_copies(rule, copies)
    return copies


def _check_partition_satisfiable(rule: Rule, new_ce: ConditionElement, attr: str) -> None:
    """Reject a constrained CE whose conjoined tests are unsatisfiable."""
    # Local imports: repro.analysis builds on this module's Assignment.
    from repro.analysis.footprint import ce_constraints, constraints_satisfiable
    from repro.match.compile import compile_rule

    probe = Rule(name=rule.name, conditions=(new_ce,), actions=())
    compiled = compile_rule(probe, plan=False)
    for a, conds in ce_constraints(compiled.ces[0]).items():
        if len(conds) >= 2 and not constraints_satisfiable(conds):
            raise PartitionConstraintError(
                f"copy_and_constrain: partitioning {rule.name!r} on "
                f"^{attr} makes attribute ^{a} unsatisfiable — the "
                f"membership partition contradicts an existing test on "
                f"that attribute, so the copy could never match",
                rule=rule.name,
                attribute=a,
            )


def _warn_on_racing_copies(rule: Rule, copies: Sequence[Rule]) -> None:
    """Best-effort commute check over the produced copies (object rules
    only — meta-rule copies are arbitrated sequentially anyway)."""
    if isinstance(rule, MetaRule) or len(copies) < 2:
        return
    try:
        from repro.analysis.commute import Verdict, classify_rule_pair

        for i, a in enumerate(copies):
            for b in copies[i + 1 :]:
                verdict = classify_rule_pair(a, b)
                if verdict.verdict == Verdict.RACES:
                    warnings.warn(
                        f"copy_and_constrain: copies {a.name!r} and "
                        f"{b.name!r} race ({verdict.reason}) — the "
                        f"partitions overlap or the rule interferes with "
                        f"itself; results may depend on arbitration",
                        UserWarning,
                        stacklevel=3,
                    )
                    return
    except Exception:  # pragma: no cover - advisory only, never fatal
        return


def copy_and_constrain_program(
    program: Program,
    rule_name: str,
    ce_index: int,
    attr: str,
    partitions: Sequence[Sequence[Value]],
) -> Program:
    """A new program with ``rule_name`` replaced by its constrained copies."""
    target = program.rule(rule_name)
    copies = copy_and_constrain(target, ce_index, attr, partitions)
    rules = []
    for r in program.rules:
        if r.name == rule_name:
            rules.extend(copies)
        else:
            rules.append(r)
    return Program(
        literalizes=program.literalizes,
        rules=tuple(rules),
        meta_rules=program.meta_rules,
    )
