"""Automatic parallelization planning: profile → copy-and-constrain → LPT.

The paper's workflow for preparing a program for P processors was manual:
profile, find the hot rule, split it with copy-and-constrain, balance the
pieces. :func:`autotune` automates exactly that pipeline:

1. **Profile** a calibration run on one site
   (:func:`~repro.parallel.partition.profile_rule_weights`);
2. **Split** — if the hottest rule carries more than ``threshold`` of the
   total match work and a value domain is known for one of its condition
   elements' attributes, replicate it into ``n_sites`` constrained copies
   (:func:`~repro.parallel.partition.copy_and_constrain_program`);
3. **Re-profile and pack** the transformed program's rules onto sites with
   LPT.

The result is a :class:`TunedPlan` carrying the transformed program, the
assignment, and a human-readable report of what was done and why — the
kind of artifact the PARADISER tooling produced for its users.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.lang.ast import Program, Value
from repro.parallel.partition import (
    Assignment,
    copy_and_constrain_program,
    hash_partitions,
    lpt_assignment,
    profile_rule_weights,
)

__all__ = ["TunedPlan", "autotune", "hottest_rule"]


@dataclass
class TunedPlan:
    """Outcome of :func:`autotune`."""

    program: Program
    assignment: Assignment
    n_sites: int
    #: Rule split by copy-and-constrain, or None if no split was needed.
    split_rule: Optional[str] = None
    #: (class, attr) the split partitioned on.
    split_on: Optional[Tuple[str, str]] = None
    #: Hot rule's share of total profiled match work before the split.
    hot_share: float = 0.0
    notes: List[str] = field(default_factory=list)

    def report(self) -> str:
        lines = [f"autotune plan for {self.n_sites} sites:"]
        lines.extend(f"  - {note}" for note in self.notes)
        return "\n".join(lines)


def hottest_rule(weights: Mapping[str, float]) -> Tuple[str, float]:
    """The heaviest rule and its share of the total profiled work."""
    total = sum(weights.values())
    if not total:
        name = sorted(weights)[0]
        return name, 0.0
    name = max(sorted(weights), key=lambda n: weights[n])
    return name, weights[name] / total


def _splittable_attr(
    program: Program,
    rule_name: str,
    domains: Mapping[Tuple[str, str], Sequence[Value]],
) -> Optional[Tuple[int, str]]:
    """First positive CE position + attribute with a known value domain."""
    rule = program.rule(rule_name)
    for idx, ce in enumerate(rule.conditions, start=1):
        if ce.negated:
            continue
        for attr, _test in ce.tests:
            if (ce.class_name, attr) in domains:
                return idx, attr
    return None


def autotune(
    program: Program,
    setup: Callable,
    n_sites: int,
    domains: Optional[Mapping[Tuple[str, str], Sequence[Value]]] = None,
    threshold: float = 0.4,
    matcher: str = "rete",
) -> TunedPlan:
    """Produce a parallelization plan for ``program`` on ``n_sites`` sites.

    ``setup(engine)`` loads the calibration workload; ``domains`` maps
    ``(class, attr)`` to runtime value domains (what
    :class:`~repro.programs.base.BenchmarkWorkload` exposes).
    """
    domains = domains or {}
    plan_notes: List[str] = []

    weights = profile_rule_weights(program, setup, matcher=matcher)
    hot_name, share = hottest_rule(weights)
    plan_notes.append(
        f"profiled {len(weights)} rules; hottest is {hot_name!r} with "
        f"{share:.0%} of match work"
    )

    tuned = program
    split_rule = None
    split_on = None
    if n_sites > 1 and share >= threshold:
        target = _splittable_attr(program, hot_name, domains)
        if target is None:
            plan_notes.append(
                f"{hot_name!r} exceeds the {threshold:.0%} split threshold but "
                f"no value domain is known for its condition attributes — "
                f"leaving it whole"
            )
        else:
            ce_index, attr = target
            rule = program.rule(hot_name)
            class_name = rule.conditions[ce_index - 1].class_name
            domain = list(domains[(class_name, attr)])
            parts = hash_partitions(domain, n_sites)
            tuned = copy_and_constrain_program(
                program, hot_name, ce_index, attr, parts
            )
            split_rule = hot_name
            split_on = (class_name, attr)
            plan_notes.append(
                f"copy-and-constrained {hot_name!r} on {class_name}.{attr} "
                f"into {n_sites} copies over a {len(domain)}-value domain"
            )
    else:
        plan_notes.append(
            "no split: below threshold or single site — rule parallelism only"
        )

    tuned_weights = profile_rule_weights(tuned, setup, matcher=matcher)
    assignment = lpt_assignment(tuned.rules, n_sites, tuned_weights)
    plan_notes.append(
        f"LPT-packed {len(tuned.rules)} rules onto {n_sites} sites"
    )

    return TunedPlan(
        program=tuned,
        assignment=assignment,
        n_sites=n_sites,
        split_rule=split_rule,
        split_on=split_on,
        hot_share=share,
        notes=plan_notes,
    )
