"""Abstract cost model for the simulated multiprocessor.

The simulator charges each site for the *operations its match engine
actually performed* (from :class:`~repro.match.stats.MatchStats`), plus
firing, broadcast and synchronization costs. Units are abstract "ticks";
only ratios matter for speedup curves, which is exactly why the simulation
is deterministic where wall-clock would be noisy.

Defaults are chosen to echo the published relative magnitudes for
production systems of the era (match dominates; a join probe costs a few
comparisons; firing and WM broadcast are heavier than a single test):

===============  =====  ==========================================
counter/phase    ticks  charged per
===============  =====  ==========================================
alpha_tests        1    WME-local test evaluated
join_probes        2    hash probe / candidate visited
join_checks        1    non-equality join test evaluated
hash_probes        1    indexed alpha-memory bucket lookup
bucket_hits        0    candidate returned by a bucket lookup (free:
                        already charged as a join probe/check)
tokens             2    partial match created
instantiations     3    conflict-set insertion
retractions        2    token/instantiation removed
fire              10    instantiation RHS evaluated
wm_broadcast       4    WM change delivered to ONE site
barrier           25    cycle synchronization, per cycle
redact_overhead    5    meta-level firing (on top of its match ops)
===============  =====  ==========================================
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Mapping

__all__ = ["CostModel"]


@dataclass(frozen=True)
class CostModel:
    """Tick charges for match operations and cycle phases."""

    alpha_tests: float = 1.0
    join_probes: float = 2.0
    join_checks: float = 1.0
    hash_probes: float = 1.0
    bucket_hits: float = 0.0
    tokens: float = 2.0
    instantiations: float = 3.0
    retractions: float = 2.0
    fire: float = 10.0
    wm_broadcast: float = 4.0
    barrier: float = 25.0
    redact_overhead: float = 5.0

    def match_cost(self, counters: Mapping[str, int]) -> float:
        """Ticks for a bundle of match-operation counters."""
        return (
            self.alpha_tests * counters.get("alpha_tests", 0)
            + self.join_probes * counters.get("join_probes", 0)
            + self.join_checks * counters.get("join_checks", 0)
            + self.hash_probes * counters.get("hash_probes", 0)
            + self.bucket_hits * counters.get("bucket_hits", 0)
            + self.tokens * counters.get("tokens", 0)
            + self.instantiations * counters.get("instantiations", 0)
            + self.retractions * counters.get("retractions", 0)
        )

    def fire_cost(self, n_firings: int) -> float:
        return self.fire * n_firings

    def broadcast_cost(self, n_changes: int) -> float:
        """Delivering ``n_changes`` WM updates to one site."""
        return self.wm_broadcast * n_changes

    def redaction_cost(self, match_counters: Mapping[str, int], meta_firings: int) -> float:
        """Serial meta-level time: its own match work plus firing overhead."""
        return self.match_cost(match_counters) + self.redact_overhead * meta_firings
