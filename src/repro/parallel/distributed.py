"""Distributed execution with replicated working memories (PARADISER-style).

The :class:`~repro.parallel.simmachine.SimMachine` models the paper's
*shared-memory* multiprocessor (one physical store, per-site match state).
PARULEL's successor environment, PARADISER, targeted *distributed*
machines: every site holds its **own working-memory replica**, kept
consistent by shipping the cycle delta as messages. This module implements
that execution model honestly:

- each site owns a real, separate :class:`~repro.wm.memory.WorkingMemory`
  (no shared store at all) plus a match engine over its assigned rules;
- a **master** (site 0's replica) runs redaction and the delta merge;
- per cycle the coordinator (a) gathers candidate instantiations from the
  sites, (b) redacts on the master, (c) evaluates survivors against the
  master replica, and (d) ships the merged delta to every site, which
  applies it to its own replica;
- WME identity is by value + timestamp and every replica applies the same
  delta sequence, so timestamps — and therefore instantiation keys —
  agree across replicas without any global coordination; tests assert
  replicas stay byte-identical and the whole machine is functionally
  equivalent to a single :class:`~repro.core.engine.ParulelEngine`.

The :class:`NetworkModel` charges communication:

- ``latency`` per communication round (two rounds per cycle: gather,
  scatter — charged only when remote sites exist; a 1-site machine is the
  communication-free serial baseline),
- ``per_message`` per candidate summary, redaction verdict, and delta
  entry shipped (delta entries go to P−1 remote sites, or only to
  interested sites with ``multicast=True``).

Figure 5 sweeps ``latency`` to show where communication swamps the
parallel match gain — the trade that separated the DADO/shared-memory
line from distributed rule systems.

**Faults and recovery.** A :class:`~repro.faults.FaultPlan` injects
deterministic failures: a non-master site can crash at cycle *k* (the
master detects the missed gather, charges the timeout, and re-hosts the
dead site's rules across survivors via
:func:`~repro.parallel.partition.rehost_assignment`); a crashed site can
rejoin later (its replica is rebuilt by replaying the machine's cumulative
delta log, then its rules migrate home); messages can be dropped
(retried with backoff, charged through the :class:`NetworkModel`),
duplicated, or delayed; straggler sites multiply their compute ticks.
Because the master gathers candidates into a *canonical order* —
``(rule position in the program, instantiation key)`` — results are
byte-identical whichever site happens to host a rule, so a run that loses
a site finishes with exactly the fault-free working memory. Every
injection and recovery action is a :class:`~repro.faults.FaultEvent` on
``DistResult.fault_events``.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Set, Tuple

from repro.errors import CycleLimitExceeded
from repro.core.actions import ActionEvaluator, InstantiationDelta
from repro.core.delta import InterferencePolicy, merge_deltas
from repro.core.redaction import MetaLevel
from repro.faults import FaultEvent, FaultInjector, FaultPlan
from repro.lang.ast import Program, Value
from repro.match.compile import compile_rules
from repro.match.instantiation import InstKey, Instantiation
from repro.match.interface import Matcher, create_matcher
from repro.obs.metrics import NULL_METRICS
from repro.obs.trace import NULL_TRACER, TraceEvent
from repro.parallel.costmodel import CostModel
from repro.parallel.partition import (
    Assignment,
    rehost_assignment,
    resolve_assignment,
)
from repro.wm.memory import WorkingMemory
from repro.wm.template import TemplateRegistry
from repro.wm.wme import WME

__all__ = ["NetworkModel", "DistributedMachine", "DistResult"]

#: One delta-log entry, in wire form: ``(removed timestamps, makes)`` where
#: each make is ``(class, attrs, timestamp)``. The log is cumulative from
#: machine construction, so replaying it into an empty store reproduces any
#: replica exactly — that is how a rejoining site catches up.
LogEntry = Tuple[Tuple[int, ...], Tuple[Tuple[str, Dict[str, Value], int], ...]]


@dataclass(frozen=True)
class NetworkModel:
    """Communication charges for the distributed machine (ticks)."""

    #: Fixed cost per communication round (gather or scatter).
    latency: float = 50.0
    #: Cost per message: candidate summary, verdict, or delta entry-hop.
    per_message: float = 2.0

    def round_cost(self, n_messages: int) -> float:
        return self.latency + self.per_message * n_messages

    def retry_cost(self, drops: int) -> float:
        """Cost of recovering ``drops`` lost transmissions of one message:
        each loss waits one latency (the retransmit timeout) and resends."""
        return drops * (self.latency + self.per_message)


@dataclass
class DistResult:
    """Outcome and cost accounting of a distributed run."""

    n_sites: int
    cycles: int
    firings: int
    reason: str
    compute_ticks: float
    comm_ticks: float
    serial_ticks: float
    messages: int
    output: List[str] = field(default_factory=list)
    #: Every injected fault and recovery action, in occurrence order.
    fault_events: List[FaultEvent] = field(default_factory=list)
    #: Message retransmissions forced by injected drops.
    retries: int = 0

    @property
    def total_ticks(self) -> float:
        return self.compute_ticks + self.comm_ticks + self.serial_ticks

    @property
    def comm_fraction(self) -> float:
        total = self.total_ticks
        return self.comm_ticks / total if total else 0.0

    @property
    def recoveries(self) -> int:
        """Recovery actions taken (redistributions and rejoins)."""
        return sum(
            1 for e in self.fault_events if e.kind in ("redistribute", "rejoin")
        )


class DistributedMachine:
    """PARULEL over P working-memory replicas and a message network."""

    def __init__(
        self,
        program: Program,
        n_sites: int,
        assignment: "Optional[Assignment | str]" = None,
        cost_model: Optional[CostModel] = None,
        network: Optional[NetworkModel] = None,
        matcher: str = "rete",
        interference: InterferencePolicy = InterferencePolicy.ERROR,
        dedupe_makes: bool = True,
        multicast: bool = False,
        fault_plan: Optional[FaultPlan] = None,
        tracer=None,
        metrics=None,
        indexed: bool = True,
    ) -> None:
        if n_sites < 1:
            raise ValueError("need at least one site")
        self.program = program
        self.n_sites = n_sites
        #: Observability (:mod:`repro.obs`). The machine has no wall clock
        #: of its own — everything is cost-model ticks — so its trace is a
        #: *virtual* timeline: one tick renders as one microsecond, each
        #: site is a lane (``site-0`` doubles as the master) and the
        #: :class:`NetworkModel` charges appear as spans on a ``network``
        #: lane. Fault injections/recoveries land as instants.
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.metrics = metrics if metrics is not None else NULL_METRICS
        self._vclock_us = 0.0
        if self.tracer.enabled:
            for s in range(n_sites):
                self.tracer.declare_lane(f"site-{s}")
            self.tracer.declare_lane("network")
        self.assignment = resolve_assignment(assignment, program.rules, n_sites)
        self.assignment.validate(program.rules)
        self.cost = cost_model or CostModel()
        self.network = network or NetworkModel()
        self.interference = InterferencePolicy.of(interference)
        self.dedupe_makes = dedupe_makes
        self.multicast = multicast
        self.matcher_name = matcher
        self.indexed = indexed
        if fault_plan is not None:
            fault_plan.validate_sites(n_sites)
        self._injector: Optional[FaultInjector] = (
            fault_plan.injector() if fault_plan is not None else None
        )
        #: Canonical gather order: rule position in the program. Candidates
        #: sort by (rule index, instantiation key), so the firing order —
        #: and therefore every timestamp the run allocates — is independent
        #: of which site happens to host a rule. Recovery that moves rules
        #: between sites cannot perturb results.
        self._rule_index: Dict[str, int] = {
            r.name: i for i, r in enumerate(program.rules)
        }

        #: One REAL working memory per site — nothing is shared.
        self.replicas: List[WorkingMemory] = [
            WorkingMemory(TemplateRegistry.from_program(program))
            for _ in range(n_sites)
        ]
        self.evaluator = ActionEvaluator()
        #: Current rule hosting; starts as the configured assignment and is
        #: recomputed by `rehost_assignment` when sites die or rejoin.
        self.hosting: Assignment = self.assignment
        self._dead: Set[int] = set()
        self.site_matchers: List[Optional[Matcher]] = [None] * n_sites
        self._hosted_names: List[frozenset] = [frozenset()] * n_sites
        self._site_interests: List[frozenset] = [frozenset()] * n_sites
        self._site_op_marks = [Counter() for _ in range(n_sites)]
        for site in range(n_sites):
            self._build_site_matcher(site)
        # The master replica hosts the meta level (reifications are local
        # to the master; they are retracted before any delta ships).
        self.meta = MetaLevel(program.meta_rules, self.replicas[0], self.evaluator)
        self.fired: Set[InstKey] = set()
        self.output: List[str] = []
        #: Cumulative delta log since construction (initial makes included):
        #: the catch-up script replayed into a rejoining replica.
        self._log: List[LogEntry] = []
        self._stragglers_noted: Set[int] = set()

    # -- site (re)construction ---------------------------------------------------

    def _build_site_matcher(self, site: int) -> None:
        """(Re)build one site's matcher over the rules it currently hosts.

        The fresh matcher replays the whole replica, so its match work —
        the real cost of re-hosting rules after a failure — lands in the
        site's next compute delta.
        """
        old = self.site_matchers[site]
        if old is not None:
            old.detach()
        rules = self.hosting.rules_of_site(site, self.program.rules)
        self.site_matchers[site] = create_matcher(
            self.matcher_name, rules, self.replicas[site], indexed=self.indexed
        )
        self._site_op_marks[site] = Counter()
        self._hosted_names[site] = frozenset(r.name for r in rules)
        classes: Set[str] = set()
        for compiled in compile_rules(rules):
            for ce in compiled.ces:
                classes.add(ce.class_name)
        self._site_interests[site] = frozenset(classes)

    def _rehost(self) -> int:
        """Recompute hosting for the current dead set; rebuild every site
        whose hosted rule set changed. Returns the number of rules moved."""
        self.hosting = rehost_assignment(
            self.assignment, sorted(self._dead), self.program.rules
        )
        moved = 0
        for site in range(self.n_sites):
            if site in self._dead:
                continue
            hosted = frozenset(
                r.name
                for r in self.program.rules
                if self.hosting.site_of[r.name] == site
            )
            if hosted != self._hosted_names[site]:
                moved += len(hosted.symmetric_difference(self._hosted_names[site]))
                self._build_site_matcher(site)
        return moved

    # -- workload ---------------------------------------------------------------

    def make(self, class_name: str, attrs: Optional[Mapping[str, Value]] = None, **kw: Value):
        """Assert an initial WME into *every* replica (same timestamps)."""
        first = self.replicas[0].make(class_name, attrs, **kw)
        for replica in self.replicas[1:]:
            replica.add(WME(first.class_name, first.attributes, first.timestamp))
        self._log.append(
            ((), ((first.class_name, first.attributes, first.timestamp),))
        )
        return first

    # -- consistency (tests call this) ---------------------------------------------

    def replicas_consistent(self) -> bool:
        """All live replicas hold exactly the same WMEs.

        Replicas of currently-dead sites are stale by definition (they
        receive no deltas until they rejoin and replay the log) and are
        excluded.
        """
        reference = {w for w in self.replicas[0] if w.class_name != "instantiation"}
        return all(
            {w for w in replica if w.class_name != "instantiation"} == reference
            for site, replica in enumerate(self.replicas)
            if site != 0 and site not in self._dead
        )

    # -- accounting -------------------------------------------------------------

    def _site_ops_delta(self, site: int) -> Counter:
        matcher = self.site_matchers[site]
        if matcher is None:
            return Counter()
        now = matcher.stats.snapshot()
        delta = now - self._site_op_marks[site]
        self._site_op_marks[site] = now
        return delta

    # -- virtual-clock tracing ---------------------------------------------------

    def _vspan(
        self, batch: List[TraceEvent], name: str, lane: str, start_us: float, dur_us: float, **args
    ) -> None:
        """Synthesize one span on the virtual timeline (ticks as µs).

        Events are plain :data:`~repro.obs.trace.TraceEvent` tuples with
        timestamps offset from the tracer's origin, fed through
        :meth:`~repro.obs.trace.Tracer.ingest` — exactly the path worker
        processes use, so virtual and wall-clock traces share tooling.
        """
        base = self.tracer.origin_ns
        batch.append(("B", name, lane, base + int(start_us * 1000), args or None))
        batch.append(("E", name, lane, base + int((start_us + max(dur_us, 0.0)) * 1000), None))

    def _vinstant(
        self, batch: List[TraceEvent], name: str, lane: str, at_us: float, **args
    ) -> None:
        base = self.tracer.origin_ns
        batch.append(("i", name, lane, base + int(at_us * 1000), args or None))

    def _obs_faults(self, batch: List[TraceEvent], ev_mark: int, at_us: float) -> int:
        """Render injector events recorded since ``ev_mark`` as trace
        instants (on the affected site's lane, or ``network`` for message
        fates) and fault-metric counts; returns the new mark."""
        if self._injector is None:
            return ev_mark
        events = self._injector.events
        for event in events[ev_mark:]:
            lane = f"site-{event.site}" if event.site is not None else "network"
            if self.tracer.enabled:
                self._vinstant(batch, event.kind, lane, at_us, detail=event.detail)
            if self.metrics.enabled:
                self.metrics.inc("parulel_fault_events_total", kind=event.kind)
        return len(events)

    # -- fault handling ----------------------------------------------------------

    def _crash_site(self, site: int, cycle_no: int) -> Tuple[float, int]:
        """Kill a site: detach its matcher, detect via the missed gather,
        and re-host its rules on the survivors. Returns (comm, messages)
        charged for detection + redistribution."""
        assert self._injector is not None
        self._dead.add(site)
        matcher = self.site_matchers[site]
        if matcher is not None:
            matcher.detach()
            self.site_matchers[site] = None
        self._injector.record(cycle_no, "crash", site=site)
        # Detection: the master waits one full gather timeout for the dead
        # site before declaring it lost.
        self._injector.record(
            cycle_no, "detect", site=site, detail="missed gather (timeout)"
        )
        moved = self._rehost()
        self._injector.record(
            cycle_no,
            "redistribute",
            site=site,
            detail=f"{moved} rule slot(s) re-hosted across survivors",
        )
        if self.metrics.enabled:
            # Same gauge the process pool's supervisor exports: 0 = site
            # serving at full isolation, >0 = degraded/down.
            self.metrics.set_gauge("parulel_site_mode", 1, site=site)
        # One timeout round, then a control round carrying the new hosting.
        return self.network.latency + self.network.round_cost(moved), moved

    def _rejoin_site(self, site: int, cycle_no: int) -> Tuple[float, int]:
        """Resurrect a site: rebuild its replica by replaying the cumulative
        delta log, then migrate its rules home. Returns (comm, messages)
        charged for the replay."""
        assert self._injector is not None
        replica = WorkingMemory(TemplateRegistry.from_program(self.program))
        by_ts: Dict[int, WME] = {}
        records = 0
        for removes, makes in self._log:
            for ts in removes:
                replica.remove(by_ts.pop(ts))
                records += 1
            for class_name, attrs, ts in makes:
                wme = WME(class_name, dict(attrs), ts)
                replica.add(wme)
                by_ts[ts] = wme
                records += 1
        self.replicas[site] = replica
        self._dead.discard(site)
        self._build_site_matcher(site)
        moved = self._rehost()
        self._injector.record(
            cycle_no,
            "rejoin",
            site=site,
            detail=f"replayed {records} delta record(s); {moved} rule slot(s) "
            f"migrated home",
        )
        if self.metrics.enabled:
            self.metrics.set_gauge("parulel_site_mode", 0, site=site)
        return self.network.round_cost(records), records

    def _apply_cycle_faults(self, cycle_no: int) -> Tuple[float, int]:
        """Process this cycle's scheduled crashes/rejoins; returns the
        (comm ticks, messages) the recovery traffic cost."""
        assert self._injector is not None
        comm = 0.0
        messages = 0
        for crash in self._injector.rejoins_at(cycle_no):
            if crash.site in self._dead:
                c, m = self._rejoin_site(crash.site, cycle_no)
                comm += c
                messages += m
        for crash in self._injector.crashes_at(cycle_no):
            if crash.site not in self._dead:
                c, m = self._crash_site(crash.site, cycle_no)
                comm += c
                messages += m
        return comm, messages

    def _charge_message_faults(
        self, n_remote: int, cycle_no: int, round_name: str
    ) -> Tuple[float, int]:
        """Seeded drop/duplicate/delay fates for one round's messages;
        returns the extra (comm ticks, messages) they cost."""
        inj = self._injector
        assert inj is not None
        plan = inj.plan
        if not (plan.drop_rate or plan.dup_rate or plan.delay_rate):
            return 0.0, 0
        comm = 0.0
        messages = 0
        for _ in range(n_remote):
            drops, duplicated, delayed = inj.message_fate()
            if drops:
                comm += self.network.retry_cost(drops)
                messages += drops
                inj.record(
                    cycle_no,
                    "drop",
                    detail=f"{round_name}: {drops} retransmission(s)",
                )
            if duplicated:
                comm += self.network.per_message
                messages += 1
                inj.record(cycle_no, "duplicate", detail=round_name)
            if delayed:
                comm += self.network.latency
                inj.record(cycle_no, "delay", detail=round_name)
        return comm, messages

    # -- execution ---------------------------------------------------------------

    def run(self, max_cycles: int = 100_000) -> DistResult:
        compute = 0.0
        comm = 0.0
        serial = 0.0
        messages = 0
        cycles = 0
        firings = 0
        reason = "quiescence"

        def result(reason: str) -> DistResult:
            return DistResult(
                n_sites=self.n_sites,
                cycles=cycles,
                firings=firings,
                reason=reason,
                compute_ticks=compute,
                comm_ticks=comm,
                serial_ticks=serial,
                messages=messages,
                output=list(self.output),
                fault_events=(
                    list(self._injector.events) if self._injector is not None else []
                ),
                retries=self._injector.retries if self._injector is not None else 0,
            )

        def flush(batch: List[TraceEvent], vt: float) -> None:
            if batch:
                self.tracer.ingest(batch)
            self._vclock_us = vt

        # Load phase: parallel across sites.
        load = [self.cost.match_cost(self._site_ops_delta(s)) for s in range(self.n_sites)]
        compute += max(load) if load else 0.0
        if self.tracer.enabled and any(load):
            batch: List[TraceEvent] = []
            for s, ticks in enumerate(load):
                if ticks:
                    self._vspan(batch, "load", f"site-{s}", self._vclock_us, ticks)
            flush(batch, self._vclock_us + max(load))

        ev_mark = 0
        while True:
            if cycles >= max_cycles:
                raise CycleLimitExceeded(
                    f"distributed run exceeded {max_cycles} cycles",
                    cycles_completed=cycles,
                    firings=firings,
                    partial=result("cycle-limit"),
                )
            cycle_no = cycles + 1
            batch = []
            vt = self._vclock_us
            if self._injector is not None:
                fault_comm, fault_msgs = self._apply_cycle_faults(cycle_no)
                comm += fault_comm
                messages += fault_msgs
                ev_mark = self._obs_faults(batch, ev_mark, vt)
                if self.tracer.enabled and fault_comm:
                    self._vspan(
                        batch, "recovery", "network", vt, fault_comm,
                        cycle=cycle_no, messages=fault_msgs,
                    )
                    vt += fault_comm

            # ---- gather candidates (one communication round) --------------
            candidates: List[Instantiation] = []
            for matcher in self.site_matchers:
                if matcher is None:
                    continue
                for inst in matcher.instantiations():
                    if inst.key in self.fired:
                        continue
                    candidates.append(inst)
            candidates.sort(
                key=lambda i: (self._rule_index[i.rule.name], i.key)
            )
            inst_site: Dict[InstKey, int] = {
                inst.key: self.hosting.site_of[inst.rule.name]
                for inst in candidates
            }
            gather_msgs = sum(1 for site in inst_site.values() if site != 0)
            if not candidates:
                flush(batch, vt)
                break
            cycles += 1
            # A single-site machine exchanges no messages at all — charging
            # round latency there would inflate the serial baseline and
            # fake distributed speedup.
            if self.n_sites > 1:
                gather_cost = self.network.round_cost(gather_msgs)
                if self._injector is not None:
                    extra_comm, extra_msgs = self._charge_message_faults(
                        gather_msgs, cycle_no, "gather"
                    )
                    gather_cost += extra_comm
                    messages += extra_msgs
                comm += gather_cost
                if self.tracer.enabled:
                    self._vspan(
                        batch, "gather", "network", vt, gather_cost,
                        cycle=cycle_no, messages=gather_msgs,
                    )
                    vt += gather_cost
            messages += gather_msgs
            if self.metrics.enabled and gather_msgs:
                self.metrics.inc(
                    "parulel_network_messages_total", gather_msgs, round="gather"
                )

            # ---- redact on the master -------------------------------------
            survivors, red_report = self.meta.redact(candidates)
            self.output.extend(self.meta.writes)
            redact_ticks = self.cost.redact_overhead * red_report.meta_firings
            verdict_cost = self.network.per_message * red_report.redacted
            serial += redact_ticks
            # Only redaction verdicts ship back (survivors fire in place).
            comm += verdict_cost
            messages += red_report.redacted
            if self.tracer.enabled:
                self._vspan(
                    batch, "redact", "site-0", vt, redact_ticks,
                    cycle=cycle_no, candidates=len(candidates),
                    redacted=red_report.redacted,
                )
                vt += redact_ticks
                if verdict_cost:
                    self._vspan(
                        batch, "verdicts", "network", vt, verdict_cost,
                        cycle=cycle_no, messages=red_report.redacted,
                    )
                    vt += verdict_cost
            if self.metrics.enabled and red_report.redacted:
                self.metrics.inc(
                    "parulel_network_messages_total",
                    red_report.redacted,
                    round="verdict",
                )

            if not survivors:
                reason = "redaction-quiescence"
                flush(batch, vt)
                break

            # ---- fire (each site evaluates its own survivors) --------------
            deltas: List[InstantiationDelta] = []
            fire_ticks = [0.0] * self.n_sites
            for inst in survivors:
                self.fired.add(inst.key)
                deltas.append(self.evaluator.evaluate(inst))
                fire_ticks[inst_site[inst.key]] += self.cost.fire
            firings += len(survivors)

            merged = merge_deltas(
                deltas, policy=self.interference, dedupe_makes=self.dedupe_makes
            )
            serial += self.cost.wm_broadcast * 0.5 * merged.size

            # ---- scatter the delta; every live replica applies it ----------
            removed_keys = [
                (w.class_name, w.attributes, w.timestamp) for w in merged.removes
            ]
            scatter_msgs = 0
            new_timestamps: List[int] = []
            for site, replica in enumerate(self.replicas):
                if site != 0 and site in self._dead:
                    continue  # stale until it rejoins and replays the log
                # Removes resolve by value+timestamp in each replica.
                for class_name, attrs, ts in removed_keys:
                    replica.remove(WME(class_name, dict(attrs), ts))
                for i, (class_name, attrs) in enumerate(merged.makes):
                    if site == 0:
                        wme = replica.make(class_name, attrs)
                        new_timestamps.append(wme.timestamp)
                    else:
                        replica.add(WME(class_name, dict(attrs), new_timestamps[i]))
                if site != 0:
                    if self.multicast:
                        relevant = sum(
                            1
                            for cls, _a in merged.makes
                            if cls in self._site_interests[site]
                        ) + sum(
                            1
                            for cls, _a, _t in removed_keys
                            if cls in self._site_interests[site]
                        )
                    else:
                        relevant = merged.size
                    scatter_msgs += relevant
            self._log.append(
                (
                    tuple(ts for _c, _a, ts in removed_keys),
                    tuple(
                        (class_name, dict(attrs), new_timestamps[i])
                        for i, (class_name, attrs) in enumerate(merged.makes)
                    ),
                )
            )
            if self.n_sites > 1:
                scatter_cost = self.network.round_cost(scatter_msgs)
                if self._injector is not None:
                    extra_comm, extra_msgs = self._charge_message_faults(
                        scatter_msgs, cycle_no, "scatter"
                    )
                    scatter_cost += extra_comm
                    messages += extra_msgs
                comm += scatter_cost
                if self.tracer.enabled:
                    self._vspan(
                        batch, "scatter", "network", vt, scatter_cost,
                        cycle=cycle_no, messages=scatter_msgs,
                    )
                    vt += scatter_cost
            messages += scatter_msgs
            if self.metrics.enabled and scatter_msgs:
                self.metrics.inc(
                    "parulel_network_messages_total", scatter_msgs, round="scatter"
                )
            for delta in deltas:
                self.evaluator.run_calls(delta)
            self.output.extend(merged.writes)

            # ---- per-site compute time ---------------------------------------
            site_ticks = []
            for s in range(self.n_sites):
                if s in self._dead:
                    continue
                ticks = self.cost.match_cost(self._site_ops_delta(s)) + fire_ticks[s]
                if self._injector is not None:
                    factor = self._injector.straggle_factor(s)
                    if factor != 1.0:
                        ticks *= factor
                        if s not in self._stragglers_noted:
                            self._stragglers_noted.add(s)
                            self._injector.record(
                                cycle_no,
                                "straggler",
                                site=s,
                                detail=f"compute ×{factor:g}",
                            )
                if self.tracer.enabled:
                    self._vspan(
                        batch, "match+fire", f"site-{s}", vt, ticks, cycle=cycle_no
                    )
                site_ticks.append(ticks)
            compute += max(site_ticks)
            serial += self.cost.barrier
            vt += max(site_ticks) + self.cost.barrier
            ev_mark = self._obs_faults(batch, ev_mark, vt)
            flush(batch, vt)

            if merged.halt or self.meta.halt_requested:
                reason = "halt"
                break

        return result(reason)
