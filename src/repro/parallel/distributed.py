"""Distributed execution with replicated working memories (PARADISER-style).

The :class:`~repro.parallel.simmachine.SimMachine` models the paper's
*shared-memory* multiprocessor (one physical store, per-site match state).
PARULEL's successor environment, PARADISER, targeted *distributed*
machines: every site holds its **own working-memory replica**, kept
consistent by shipping the cycle delta as messages. This module implements
that execution model honestly:

- each site owns a real, separate :class:`~repro.wm.memory.WorkingMemory`
  (no shared store at all) plus a match engine over its assigned rules;
- a **master** (site 0's replica) runs redaction and the delta merge;
- per cycle the coordinator (a) gathers candidate instantiations from the
  sites, (b) redacts on the master, (c) evaluates survivors against the
  master replica, and (d) ships the merged delta to every site, which
  applies it to its own replica;
- WME identity is by value + timestamp and every replica applies the same
  delta sequence, so timestamps — and therefore instantiation keys —
  agree across replicas without any global coordination; tests assert
  replicas stay byte-identical and the whole machine is functionally
  equivalent to a single :class:`~repro.core.engine.ParulelEngine`.

The :class:`NetworkModel` charges communication:

- ``latency`` per communication round (two rounds per cycle: gather,
  scatter — charged only when remote sites exist; a 1-site machine is the
  communication-free serial baseline),
- ``per_message`` per candidate summary, redaction verdict, and delta
  entry shipped (delta entries go to P−1 remote sites, or only to
  interested sites with ``multicast=True``).

Figure 5 sweeps ``latency`` to show where communication swamps the
parallel match gain — the trade that separated the DADO/shared-memory
line from distributed rule systems.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Set, Tuple

from repro.errors import CycleLimitExceeded
from repro.core.actions import ActionEvaluator, InstantiationDelta
from repro.core.delta import InterferencePolicy, merge_deltas
from repro.core.redaction import MetaLevel
from repro.lang.ast import Program, Value
from repro.match.compile import compile_rules
from repro.match.instantiation import InstKey, Instantiation
from repro.match.interface import Matcher, create_matcher
from repro.parallel.costmodel import CostModel
from repro.parallel.partition import Assignment, round_robin_assignment
from repro.wm.memory import WorkingMemory
from repro.wm.template import TemplateRegistry
from repro.wm.wme import WME

__all__ = ["NetworkModel", "DistributedMachine", "DistResult"]


@dataclass(frozen=True)
class NetworkModel:
    """Communication charges for the distributed machine (ticks)."""

    #: Fixed cost per communication round (gather or scatter).
    latency: float = 50.0
    #: Cost per message: candidate summary, verdict, or delta entry-hop.
    per_message: float = 2.0

    def round_cost(self, n_messages: int) -> float:
        return self.latency + self.per_message * n_messages


@dataclass
class DistResult:
    """Outcome and cost accounting of a distributed run."""

    n_sites: int
    cycles: int
    firings: int
    reason: str
    compute_ticks: float
    comm_ticks: float
    serial_ticks: float
    messages: int
    output: List[str] = field(default_factory=list)

    @property
    def total_ticks(self) -> float:
        return self.compute_ticks + self.comm_ticks + self.serial_ticks

    @property
    def comm_fraction(self) -> float:
        total = self.total_ticks
        return self.comm_ticks / total if total else 0.0


class DistributedMachine:
    """PARULEL over P working-memory replicas and a message network."""

    def __init__(
        self,
        program: Program,
        n_sites: int,
        assignment: Optional[Assignment] = None,
        cost_model: Optional[CostModel] = None,
        network: Optional[NetworkModel] = None,
        matcher: str = "rete",
        interference: InterferencePolicy = InterferencePolicy.ERROR,
        dedupe_makes: bool = True,
        multicast: bool = False,
    ) -> None:
        if n_sites < 1:
            raise ValueError("need at least one site")
        self.program = program
        self.n_sites = n_sites
        self.assignment = assignment or round_robin_assignment(program.rules, n_sites)
        self.assignment.validate(program.rules)
        self.cost = cost_model or CostModel()
        self.network = network or NetworkModel()
        self.interference = InterferencePolicy.of(interference)
        self.dedupe_makes = dedupe_makes
        self.multicast = multicast

        #: One REAL working memory per site — nothing is shared.
        self.replicas: List[WorkingMemory] = [
            WorkingMemory(TemplateRegistry.from_program(program))
            for _ in range(n_sites)
        ]
        self.evaluator = ActionEvaluator()
        self.site_matchers: List[Matcher] = []
        self._site_interests: List[frozenset] = []
        for site in range(n_sites):
            rules = self.assignment.rules_of_site(site, program.rules)
            self.site_matchers.append(
                create_matcher(matcher, rules, self.replicas[site])
            )
            classes: Set[str] = set()
            for compiled in compile_rules(rules):
                for ce in compiled.ces:
                    classes.add(ce.class_name)
            self._site_interests.append(frozenset(classes))
        # The master replica hosts the meta level (reifications are local
        # to the master; they are retracted before any delta ships).
        self.meta = MetaLevel(program.meta_rules, self.replicas[0], self.evaluator)
        self.fired: Set[InstKey] = set()
        self.output: List[str] = []
        self._site_op_marks = [Counter() for _ in range(n_sites)]

    # -- workload ---------------------------------------------------------------

    def make(self, class_name: str, attrs: Optional[Mapping[str, Value]] = None, **kw: Value):
        """Assert an initial WME into *every* replica (same timestamps)."""
        first = self.replicas[0].make(class_name, attrs, **kw)
        for replica in self.replicas[1:]:
            replica.add(WME(first.class_name, first.attributes, first.timestamp))
        return first

    # -- consistency (tests call this) ---------------------------------------------

    def replicas_consistent(self) -> bool:
        """All replicas hold exactly the same WMEs."""
        reference = {w for w in self.replicas[0] if w.class_name != "instantiation"}
        return all(
            {w for w in replica if w.class_name != "instantiation"} == reference
            for replica in self.replicas[1:]
        )

    # -- accounting -------------------------------------------------------------

    def _site_ops_delta(self, site: int) -> Counter:
        now = self.site_matchers[site].stats.snapshot()
        delta = now - self._site_op_marks[site]
        self._site_op_marks[site] = now
        return delta

    # -- execution ---------------------------------------------------------------

    def run(self, max_cycles: int = 100_000) -> DistResult:
        compute = 0.0
        comm = 0.0
        serial = 0.0
        messages = 0
        cycles = 0
        firings = 0
        reason = "quiescence"

        # Load phase: parallel across sites.
        load = [self.cost.match_cost(self._site_ops_delta(s)) for s in range(self.n_sites)]
        compute += max(load) if load else 0.0

        while True:
            if cycles >= max_cycles:
                raise CycleLimitExceeded(f"distributed run exceeded {max_cycles} cycles")

            # ---- gather candidates (one communication round) --------------
            candidates: List[Instantiation] = []
            inst_site: Dict[InstKey, int] = {}
            gather_msgs = 0
            for site, m in enumerate(self.site_matchers):
                for inst in m.instantiations():
                    if inst.key in self.fired:
                        continue
                    candidates.append(inst)
                    inst_site[inst.key] = site
                    if site != 0:
                        gather_msgs += 1
            if not candidates:
                break
            cycles += 1
            # A single-site machine exchanges no messages at all — charging
            # round latency there would inflate the serial baseline and
            # fake distributed speedup.
            if self.n_sites > 1:
                comm += self.network.round_cost(gather_msgs)
            messages += gather_msgs

            # ---- redact on the master -------------------------------------
            survivors, red_report = self.meta.redact(candidates)
            self.output.extend(self.meta.writes)
            serial += self.cost.redact_overhead * red_report.meta_firings
            # Only redaction verdicts ship back (survivors fire in place).
            comm += self.network.per_message * red_report.redacted
            messages += red_report.redacted

            if not survivors:
                reason = "redaction-quiescence"
                break

            # ---- fire (each site evaluates its own survivors) --------------
            deltas: List[InstantiationDelta] = []
            fire_ticks = [0.0] * self.n_sites
            for inst in survivors:
                self.fired.add(inst.key)
                deltas.append(self.evaluator.evaluate(inst))
                fire_ticks[inst_site[inst.key]] += self.cost.fire
            firings += len(survivors)

            merged = merge_deltas(
                deltas, policy=self.interference, dedupe_makes=self.dedupe_makes
            )
            serial += self.cost.wm_broadcast * 0.5 * merged.size

            # ---- scatter the delta; every replica applies it ----------------
            removed_keys = [
                (w.class_name, w.attributes, w.timestamp) for w in merged.removes
            ]
            scatter_msgs = 0
            new_timestamps: List[int] = []
            for site, replica in enumerate(self.replicas):
                # Removes resolve by value+timestamp in each replica.
                for class_name, attrs, ts in removed_keys:
                    replica.remove(WME(class_name, dict(attrs), ts))
                for i, (class_name, attrs) in enumerate(merged.makes):
                    if site == 0:
                        wme = replica.make(class_name, attrs)
                        new_timestamps.append(wme.timestamp)
                    else:
                        replica.add(WME(class_name, dict(attrs), new_timestamps[i]))
                if site != 0:
                    if self.multicast:
                        relevant = sum(
                            1
                            for cls, _a in merged.makes
                            if cls in self._site_interests[site]
                        ) + sum(
                            1
                            for cls, _a, _t in removed_keys
                            if cls in self._site_interests[site]
                        )
                    else:
                        relevant = merged.size
                    scatter_msgs += relevant
            if self.n_sites > 1:
                comm += self.network.round_cost(scatter_msgs)
            messages += scatter_msgs
            for delta in deltas:
                self.evaluator.run_calls(delta)
            self.output.extend(merged.writes)

            # ---- per-site compute time ---------------------------------------
            site_ticks = []
            for s in range(self.n_sites):
                site_ticks.append(
                    self.cost.match_cost(self._site_ops_delta(s)) + fire_ticks[s]
                )
            compute += max(site_ticks)
            serial += self.cost.barrier

            if merged.halt or self.meta.halt_requested:
                reason = "halt"
                break

        return DistResult(
            n_sites=self.n_sites,
            cycles=cycles,
            firings=firings,
            reason=reason,
            compute_ticks=compute,
            comm_ticks=comm,
            serial_ticks=serial,
            messages=messages,
            output=list(self.output),
        )
