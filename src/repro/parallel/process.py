"""Process-parallel match fan-out: real data parallelism past the GIL.

:mod:`repro.parallel.threaded` measures the GIL ceiling — pure-Python match
work fanned out to threads does not scale, which Table 4 documents. This
module is the escape hatch: :class:`ProcessMatchPool` keeps one persistent
``multiprocessing`` worker per site, partitions the rules across sites with
the same :class:`~repro.parallel.partition.Assignment` machinery the
simulated machines use, and computes the conflict set with genuinely
concurrent interpreters (one GIL each).

What keeps it fast and correct:

- **Delta shipping.** Each worker owns a private working-memory replica.
  Per cycle the pool drains a :class:`~repro.wm.memory.DeltaRecorder` and
  broadcasts only the net adds/removes since the previous cycle — never
  the whole memory. Timestamps identify WMEs across replicas, so removes
  are a timestamp list and adds are ``(class, attrs, timestamp)`` records.
- **Deterministic merge.** Workers return compact match summaries
  ``(rule name, per-CE timestamps, environment)``; the parent rebuilds
  :class:`~repro.match.instantiation.Instantiation` objects against its own
  WME store and concatenates per-site results in site order, rules in
  compiled order within a site — byte-identical to the sequential matchers
  (the differential suite asserts this).
- **Robustness.** Every cycle applies a per-worker timeout; a crashed,
  wedged, or killed worker is respawned and caught up by replaying the
  cumulative delta log, then re-asked for its site's matches. A run
  survives ``kill -9`` of any worker mid-cycle (tests inject exactly
  that).
- **Supervised degradation.** Each site has a respawn budget
  (``respawn_limit``; ``None`` = unlimited) and a
  :class:`~repro.resilience.supervisor.SupervisorPolicy` deciding when to
  retry and when to give up. When a site's worker keeps dying past its
  budget (or trips the policy's circuit breaker), the pool stops
  respawning and *degrades* the site one rung down the policy's ladder —
  ``process`` → (optionally) ``threaded`` (matched in-parent on a helper
  thread) → ``serial`` (matched in-parent inline by the serial join
  engine). The run stays alive — slower on that site, never wrong —
  instead of raising :class:`~repro.errors.MatchError`. Because the
  parent WM holds exactly the replica contents in the same order,
  degraded results are byte-identical to worker results. Policies can
  add seeded respawn backoff, ping/pong heartbeat probes (catching a
  wedged worker *before* a request burns the reply deadline), and
  cool-down re-promotion back up the ladder. The default policy is the
  pool's historical behaviour: immediate respawns, permanent degradation
  straight to in-parent serial. Every respawn, degradation, backoff,
  heartbeat miss, breaker transition and promotion is a
  :class:`~repro.faults.FaultEvent`; engines drain them per cycle via
  :meth:`ProcessMatcher.drain_fault_events` into the
  :class:`~repro.core.engine.CycleReport`.
- **Fault injection.** A :class:`~repro.faults.FaultPlan` can schedule
  real ``SIGKILL`` (``kills``) and ``SIGSTOP`` (``wedges``) against
  workers at a given conflict-set cycle, driving the recovery machinery
  deterministically under test.
- **Lifecycle.** ``close()`` is idempotent, bounded (a 1 s join per worker
  before an unconditional kill — even a SIGSTOP'd worker cannot stall it),
  the pool is a context manager, and workers are daemonic so a leaked pool
  cannot wedge interpreter shutdown.

:class:`ProcessMatcher` adapts the pool to the standard
:class:`~repro.match.interface.Matcher` interface so engines can select it
with ``EngineConfig(matcher="process")`` (or ``"process:N"`` for an
explicit worker count) like any other backend.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
import signal
import threading
import time
from multiprocessing.connection import Connection
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.errors import MatchError
from repro.faults import FaultEvent, FaultInjector, FaultPlan
from repro.lang.ast import Rule, Value
from repro.match.alphaindex import AlphaCache, ColumnVectorCache
from repro.match.compile import CompiledRule, compile_rules
from repro.match.instantiation import ConflictSet, Instantiation
from repro.match.interface import Matcher
from repro.match.join import enumerate_matches
from repro.obs.flightrec import (
    EV_MATCH_REPLY,
    EV_MATCH_REQ,
    EV_RULE_BEGIN,
    EV_RULE_END,
    EV_VECTOR_SCAN,
    EV_WORKER_EXIT,
    EV_WORKER_START,
    FlightRing,
)
from repro.obs.metrics import NULL_METRICS
from repro.obs.profile import (
    RULE_MATCH_SECONDS,
    VECTOR_PROBE_FALLBACK,
    VECTOR_SCAN_ROWS,
)
from repro.obs.trace import NULL_TRACER, TraceEvent, Tracer
from repro.parallel.partition import Assignment, resolve_assignment
from repro.resilience.supervisor import SiteSupervisor, SupervisorPolicy
from repro.wm.columnar import ColumnarReader, ColumnarWorkingMemory
from repro.wm.memory import DeltaRecorder, WMDelta, WorkingMemory
from repro.wm.wme import WME

__all__ = ["ProcessMatchPool", "ProcessMatcher", "default_worker_count"]

#: One match found by a worker: (rule name, per-CE timestamps (0 for a
#: negated CE), variable environment). Small, picklable, and enough for the
#: parent to rebuild the Instantiation against its own WME objects.
MatchSummary = Tuple[str, Tuple[int, ...], Dict[str, Value]]

#: Per-reply observability payload: the worker's raw span buffer (shipped
#: back alongside match results, ingested onto a ``worker-<site>`` lane),
#: per-rule match seconds, and the vectorized probe kernel's per-cycle
#: work deltas (``None`` outside vector mode). ``None`` when observability
#: is off.
ObsPayload = Optional[
    Tuple[List[TraceEvent], List[Tuple[str, float]], Optional[Dict[str, int]]]
]

#: Per-worker, per-cycle reply deadline (seconds). Generous: it exists to
#: unwedge a hung worker, not to police slow matches. Override per run with
#: ``ProcessMatchPool(timeout=...)`` or the CLI's ``--matcher-timeout``.
DEFAULT_TIMEOUT = 60.0


def default_worker_count() -> int:
    """Workers to use when the caller does not say: the usable cores,
    capped at 4 (the paper-era site counts; fan-out beyond match
    parallelism only adds IPC)."""
    try:
        n = len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        n = os.cpu_count() or 1
    return max(1, min(4, n))


# ---------------------------------------------------------------------------
# Worker side
# ---------------------------------------------------------------------------


def _worker_main(
    conn: Connection,
    rules: Tuple[Rule, ...],
    obs: bool = False,
    indexed: bool = True,
    vector: bool = True,
    flight: Optional[Tuple[str, Dict[str, int]]] = None,
) -> None:
    """Worker loop: maintain a WM replica, answer match requests.

    Protocol (parent → worker):

    - ``("match", [wire_delta, ...])`` — apply the pickled deltas in
      order, then reply ``("ok", ([MatchSummary, ...], obs_payload))``
      for this site's rules, where ``obs_payload`` is the worker's span
      buffer and per-rule match times when ``obs`` is on, else ``None``;
    - ``("attach", spec)`` — columnar mode: attach the parent's
      shared-memory columns (:class:`~repro.wm.columnar.ColumnarReader`)
      and build the replica from the liveness snapshot; no reply;
    - ``("match-shm", info)`` — columnar mode: refresh the replica from
      the shared delta journal up to the message's cursors, then match
      and reply exactly as ``"match"`` does;
    - ``("ping", token)`` — liveness probe: reply ``("pong", token)``
      immediately (a wedged or dead worker cannot);
    - ``("stop",)`` — exit.

    Any exception is reported as ``("err", message)``; the parent treats it
    as fatal (a deterministic error would recur on respawn).

    With ``vector`` (and ``indexed``) on, a columnar attach switches the
    worker onto the vectorized probe kernel: no replica WM is populated at
    all — alpha memories are row-id sets over the shared columns
    (:class:`~repro.match.alphaindex.ColumnVectorCache`), refresh advances
    the journal without materializing, and WMEs are decoded lazily for
    probe survivors only. Delta mode and ``vector=False`` keep the replica
    path, with the bootstrap batched class-by-class through
    ``wm.bulk_load`` / ``AlphaCache.bulk_add``.

    With ``obs`` on the worker runs its own :class:`~repro.obs.Tracer`
    (spans on a local lane, rewritten to ``worker-<site>`` by the parent
    at ingest) — ``perf_counter_ns`` stamps share the parent's monotonic
    base, so the shipped spans land on the parent's timeline unadjusted.

    ``flight`` is the flight-recorder spec ``(ring segment name, rule-id
    map)``: the worker attaches the *parent-created* shared-memory ring
    and journals its lifecycle (start/stop, match requests, per-rule
    begin/end, replies) into it. Because the parent owns the segment and
    keeps it mapped, those records survive this worker being SIGKILLed
    mid-rule — that is the whole point. A respawned worker re-attaches
    the same ring and continues the sequence.
    """
    ring: Optional[FlightRing] = None
    rule_ids: Dict[str, int] = {}
    if flight is not None:
        ring_name, rule_ids = flight
        try:
            ring = FlightRing.attach(ring_name)
        except Exception:  # noqa: BLE001 - recording is best-effort
            ring = None
    if ring is not None:
        ring.append(EV_WORKER_START, 0, a=os.getpid())
    compiled = compile_rules(rules)
    wm = WorkingMemory()
    by_ts: Dict[int, WME] = {}
    # Worker-side indexed alpha memories, rebuilt incrementally from the
    # shipped deltas (or the shared journal): both paths go through
    # wm.add/remove, which notify the attached cache's listener. Created
    # lazily so a columnar bootstrap can bulk-load the replica first —
    # the cache then primes per class via bulk_add instead of replaying
    # one listener callback per WME.
    alpha: Optional[AlphaCache] = None
    tracer = Tracer() if obs else NULL_TRACER
    reader: Optional[ColumnarReader] = None
    #: Column-native alpha source; set on attach in vector mode, in which
    #: case ``wm``/``by_ts``/``alpha`` stay empty and unused.
    vcache: Optional[ColumnVectorCache] = None
    vec_prev = {"scanned": 0, "materialized": 0, "fallback": 0, "probes": 0}
    cycle = 0

    def ensure_alpha() -> Optional[AlphaCache]:
        nonlocal alpha
        if alpha is None and indexed:
            alpha = AlphaCache(wm)
            alpha.attach()
        return alpha

    def replica_add(wme: WME) -> None:
        wm.add(wme)
        by_ts[wme.timestamp] = wme

    def replica_remove(wme: WME) -> None:
        del by_ts[wme.timestamp]
        wm.remove(wme)

    def bootstrap_class(_name: str, batch: List[WME]) -> None:
        wm.bulk_load(batch)
        for wme in batch:
            by_ts[wme.timestamp] = wme

    while True:
        try:
            msg = conn.recv()
        except (EOFError, OSError):
            if reader is not None:
                reader.close()
            if ring is not None:
                ring.append(EV_WORKER_EXIT, cycle, code=1)  # pipe lost
                ring.close()
            return
        if msg[0] == "stop":
            if reader is not None:
                reader.close()
            if ring is not None:
                ring.append(EV_WORKER_EXIT, cycle, code=0)  # clean stop
                ring.close()
            return
        try:
            tag = msg[0]
            if tag == "attach":
                if reader is not None:
                    reader.close()
                reader = ColumnarReader(msg[1])
                with tracer.span("attach", lane="worker"):
                    if vector and indexed:
                        # Vector mode: nothing is materialized up front —
                        # memories prime themselves from the liveness
                        # columns on first use.
                        vcache = ColumnVectorCache(reader)
                    else:
                        reader.attach_bulk(bootstrap_class)
                continue
            if tag == "ping":
                conn.send(("pong", msg[1]))
                continue
            cycle += 1
            if ring is not None:
                ring.append(
                    EV_MATCH_REQ,
                    cycle,
                    a=len(msg[1]) if tag == "match" else -1,
                )
            rule_times: List[Tuple[str, float]] = []
            if tag == "match-shm":
                with tracer.span("refresh-journal", lane="worker", cycle=cycle):
                    if vcache is not None:
                        vcache.refresh(msg[1])
                    else:
                        reader.refresh(msg[1], replica_add, replica_remove)
            else:
                deltas = msg[1]
                if deltas:
                    with tracer.span(
                        "apply-delta", lane="worker", cycle=cycle, deltas=len(deltas)
                    ):
                        for wire in deltas:
                            WMDelta.apply_wire(wm, by_ts, wire)
            out: List[MatchSummary] = []
            alpha_source = vcache if vcache is not None else ensure_alpha()
            with tracer.span("match", lane="worker", cycle=cycle, rules=len(compiled)):
                for cr in compiled:
                    t0 = time.perf_counter() if obs else 0.0
                    # Begin/end bracket per rule: a SIGKILL between the two
                    # leaves an unmatched BEGIN in the shared ring — exactly
                    # what the post-mortem "last in-flight rule" query reads.
                    if ring is not None:
                        n0 = len(out)
                        ring.append(
                            EV_RULE_BEGIN, cycle, code=rule_ids.get(cr.name, 0)
                        )
                    for inst in enumerate_matches(
                        cr, wm, alpha_source=alpha_source, indexed=indexed
                    ):
                        out.append(
                            (
                                cr.name,
                                tuple(
                                    w.timestamp if w is not None else 0
                                    for w in inst.wmes
                                ),
                                inst.env,
                            )
                        )
                    if ring is not None:
                        ring.append(
                            EV_RULE_END,
                            cycle,
                            code=rule_ids.get(cr.name, 0),
                            a=len(out) - n0,
                        )
                    if obs:
                        rule_times.append((cr.name, time.perf_counter() - t0))
            vec_stats: Optional[Dict[str, int]] = None
            if vcache is not None:
                cur = vcache.counters()
                vec_stats = {k: cur[k] - vec_prev[k] for k in cur}
                vec_prev = cur
                if ring is not None:
                    ring.append(
                        EV_VECTOR_SCAN,
                        cycle,
                        a=vec_stats["scanned"],
                        b=vec_stats["materialized"],
                        code=min(vec_stats["fallback"], 0x7FFF),
                    )
            payload: ObsPayload = (
                (tracer.drain_events(), rule_times, vec_stats) if obs else None
            )
            conn.send(("ok", (out, payload)))
            if ring is not None:
                ring.append(EV_MATCH_REPLY, cycle, a=len(out))
        except Exception as exc:  # noqa: BLE001 - forwarded to the parent
            try:
                conn.send(("err", f"{type(exc).__name__}: {exc}"))
            except (BrokenPipeError, OSError):
                return


# ---------------------------------------------------------------------------
# Parent side
# ---------------------------------------------------------------------------


class ProcessMatchPool:
    """Conflict-set computation fanned out to persistent worker processes.

    Rules are partitioned across ``n_workers`` sites (round-robin unless an
    :class:`~repro.parallel.partition.Assignment` is given); sites with no
    rules get no process. Working memory must not be mutated while
    :meth:`conflict_set` runs — the engines never do (match and apply are
    separate phases of the cycle).
    """

    def __init__(
        self,
        rules: Sequence[Rule],
        wm: WorkingMemory,
        n_workers: int,
        assignment: "Optional[Assignment | str]" = None,
        timeout: Optional[float] = DEFAULT_TIMEOUT,
        start_method: Optional[str] = None,
        respawn_limit: Optional[int] = None,
        fault_plan: Optional[FaultPlan] = None,
        supervisor: Optional[SupervisorPolicy] = None,
        tracer=None,
        metrics=None,
        flightrec=None,
        indexed: bool = True,
        vector_probe: bool = True,
    ) -> None:
        if n_workers < 1:
            raise ValueError("need at least one worker")
        # An unconfigured timeout must never mean "wait forever": a worker
        # that dies between request and reply would hang the parent.
        if timeout is None:
            timeout = DEFAULT_TIMEOUT
        if timeout <= 0:
            raise ValueError("timeout must be > 0 seconds")
        if respawn_limit is not None and respawn_limit < 0:
            raise ValueError("respawn_limit must be >= 0 (None for unlimited)")
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.metrics = metrics if metrics is not None else NULL_METRICS
        #: Workers only pay span-recording costs when the parent can use
        #: them; the flag rides along on every (re)spawn.
        self._obs = self.tracer.enabled or self.metrics.enabled
        self.wm = wm
        self.indexed = indexed
        #: Vectorized probe kernel in columnar workers. Requires the
        #: indexed join path (the kernel *is* a set of hash indexes);
        #: ``--no-index`` ablations therefore imply ``--no-vector-probe``.
        self.vector = bool(vector_probe) and indexed
        #: Parent-side alpha cache for degraded sites, created on first
        #: degradation (no listener overhead while every worker is healthy).
        self._parent_alpha: Optional[AlphaCache] = None
        self.n_workers = n_workers
        self.timeout = timeout
        self.respawn_limit = respawn_limit
        self.assignment = resolve_assignment(assignment, rules, n_workers)
        self._rules_by_name: Dict[str, Rule] = {r.name: r for r in rules}
        self._site_rules: List[List[Rule]] = [[] for _ in range(n_workers)]
        for rule in rules:
            self._site_rules[self.assignment.site_of[rule.name]].append(rule)
        #: Sites that actually carry rules — the only ones given a process.
        self.active_sites: Tuple[int, ...] = tuple(
            s for s in range(n_workers) if self._site_rules[s]
        )
        if start_method is None:
            start_method = (
                "fork"
                if "fork" in multiprocessing.get_all_start_methods()
                else "spawn"
            )
        self._ctx = multiprocessing.get_context(start_method)
        #: Shared-attach mode: the store's columns live in shared memory,
        #: so workers attach once and refresh from the shared delta
        #: journal — no per-cycle delta pickling at all.
        self._shared = isinstance(wm, ColumnarWorkingMemory)
        #: Parent-side timestamp index for rebuilding Instantiations with
        #: the exact WME objects the sequential matchers would use.
        self._wme_by_ts: Dict[int, WME] = {}
        self._recorder: Optional[DeltaRecorder] = None
        if self._shared:
            # No delta recorder: track the ts index with a thin listener.
            self._wme_by_ts = {w.timestamp: w for w in wm}
            wm.add_listener(self._ts_listener)
        else:
            self._recorder = DeltaRecorder(wm)
        #: Sites whose worker has attached the shared columns (columnar
        #: mode only; reset on respawn).
        self._attached: Set[int] = set()
        #: Cumulative wire-delta log since pool creation — the catch-up
        #: script replayed into a respawned worker (delta mode only).
        self._log: List[tuple] = []
        self._conns: Dict[int, Connection] = {}
        self._procs: Dict[int, multiprocessing.process.BaseProcess] = {}
        #: Workers respawned after a crash/timeout (tests assert on this).
        self.respawns = 0
        #: Per-site respawn counts, charged against ``respawn_limit``.
        self.site_respawns: Dict[int, int] = {}
        #: Sites matched in-parent (rungs below ``process``): budget ran
        #: out, the circuit breaker tripped, or respawns kept failing.
        self.degraded_sites: Set[int] = set()
        #: When to retry, how long to wait, when to give up, when to try
        #: again — the policy half of supervision (the pool is the
        #: mechanics half). Default = the pool's historical behaviour.
        self.policy = supervisor if supervisor is not None else SupervisorPolicy()
        self._sup = SiteSupervisor(self.policy, self.active_sites)
        #: Delta-mode sites just promoted back to a worker: their next
        #: dispatch must replay the whole delta log, not this cycle's
        #: increment (columnar promotions re-attach via ``_attached``).
        self._needs_catchup: Set[int] = set()
        self._site_compiled: Dict[int, Tuple[CompiledRule, ...]] = {}
        self._injector: Optional[FaultInjector] = (
            fault_plan.injector() if fault_plan is not None else None
        )
        self._fault_events: List[FaultEvent] = []
        self._cycle = 0
        self._closed = False
        #: Flight recorder (parent-owned). Each active site gets a
        #: parent-created shared-memory ring; the spec rides along on every
        #: (re)spawn so even a replacement worker journals into the *same*
        #: ring — the parent can decode it after any SIGKILL.
        self._flightrec = flightrec
        self._flight_specs: Dict[int, Optional[Tuple[str, Dict[str, int]]]] = {}
        if flightrec is not None:
            for site in self.active_sites:
                self._flight_specs[site] = flightrec.worker_spec(
                    site, [r.name for r in self._site_rules[site]]
                )
        for site in self.active_sites:
            self._spawn(site)

    # -- worker management -------------------------------------------------

    def _spawn(self, site: int) -> None:
        parent_conn, child_conn = self._ctx.Pipe()
        proc = self._ctx.Process(
            target=_worker_main,
            args=(
                child_conn,
                tuple(self._site_rules[site]),
                self._obs,
                self.indexed,
                self.vector,
                self._flight_specs.get(site),
            ),
            name=f"parulel-match-site{site}",
            daemon=True,
        )
        proc.start()
        child_conn.close()
        self._conns[site] = parent_conn
        self._procs[site] = proc

    def _ts_listener(self, wme: WME, added: bool) -> None:
        """Columnar mode: keep the parent's ts→WME rebuild index current
        (the delta recorder does this as a side effect in delta mode)."""
        if added:
            self._wme_by_ts[wme.timestamp] = wme
        else:
            self._wme_by_ts.pop(wme.timestamp, None)

    def _kill(self, site: int) -> None:
        proc = self._procs.get(site)
        if proc is not None and proc.is_alive():
            proc.kill()
            proc.join()
        conn = self._conns.get(site)
        if conn is not None:
            conn.close()
        self._attached.discard(site)

    def _record(self, kind: str, site: int, detail: str = "") -> None:
        event = FaultEvent(cycle=self._cycle, kind=kind, site=site, detail=detail)
        self._fault_events.append(event)
        # The pool is where these events originate, so it is the one place
        # they become trace instants and fault-metric counts (the engine
        # only attaches the drained events to its CycleReport).
        if self.tracer.enabled:
            self.tracer.instant(
                kind, lane=f"worker-{site}", cycle=self._cycle, detail=detail
            )
        if self.metrics.enabled:
            self.metrics.inc("parulel_fault_events_total", kind=kind)
            if kind == "respawn":
                self.metrics.inc("parulel_worker_respawns_total", site=site)
        if self._flightrec is not None:
            self._flightrec.record_fault(kind, site, self._cycle)

    def drain_fault_events(self) -> List[FaultEvent]:
        """Fault/recovery events since the last drain (engine hook)."""
        out, self._fault_events = self._fault_events, []
        return out

    def _try_send(self, site: int, msg: tuple) -> bool:
        try:
            self._conns[site].send(msg)
            return True
        except (BrokenPipeError, OSError):
            return False

    def _try_send_bytes(self, site: int, blob: bytes) -> bool:
        """Ship an already-pickled message. ``Connection.recv`` unpickles
        whatever bytes arrive, so ``send_bytes(pickle.dumps(msg))`` is
        wire-identical to ``send(msg)`` — but serialized exactly once,
        which also makes ``len(blob)`` the *exact* IPC byte count (the
        old scatter path pickled a second time just to measure)."""
        try:
            self._conns[site].send_bytes(blob)
            return True
        except (BrokenPipeError, OSError):
            return False

    def _recv(self, site: int) -> Optional[List[MatchSummary]]:
        """One reply's match summaries (observability payload ingested as
        a side effect), or ``None`` when the worker is dead or wedged.

        Waits under a bounded deadline no matter how the pool was
        configured, polling in short slices so a worker that died *after*
        the request was sent fails over in well under a second instead of
        burning the whole reply deadline (or, with no usable timeout,
        blocking forever — the hang this replaces)."""
        conn = self._conns[site]
        deadline = time.monotonic() + self.timeout
        try:
            while True:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return None  # wedged past the deadline
                if conn.poll(min(0.25, remaining)):
                    break
                proc = self._procs.get(site)
                if proc is not None and not proc.is_alive() and not conn.poll(0):
                    return None  # died before replying, nothing buffered
            tag, payload = conn.recv()
        except (EOFError, OSError):
            return None
        if tag == "err":
            raise MatchError(f"match worker for site {site} failed: {payload}")
        summaries, obs_payload = payload
        self._ingest_obs(site, obs_payload)
        if self.metrics.enabled:
            self.metrics.inc("parulel_ipc_messages_total", direction="reply")
        return summaries

    def _ingest_obs(self, site: int, obs_payload: ObsPayload) -> None:
        """Fold a worker's shipped spans and per-rule match times into the
        parent tracer/registry, on the worker's own lane."""
        if obs_payload is None:
            return
        events, rule_times, vec_stats = obs_payload
        if self.tracer.enabled and events:
            self.tracer.ingest(events, lane=f"worker-{site}")
        if self.metrics.enabled:
            for rule, seconds in rule_times:
                self.metrics.observe(
                    RULE_MATCH_SECONDS, seconds, rule=rule, site=site
                )
            if vec_stats is not None:
                if vec_stats["scanned"]:
                    self.metrics.inc(
                        VECTOR_SCAN_ROWS, vec_stats["scanned"], site=site
                    )
                if vec_stats["fallback"]:
                    self.metrics.inc(
                        VECTOR_PROBE_FALLBACK, vec_stats["fallback"], site=site
                    )

    def _probe(self, site: int) -> bool:
        """Ping/pong liveness probe: a healthy worker answers between
        cycles in microseconds; a dead or SIGSTOP'd one cannot. Bounded by
        the policy's ``heartbeat_timeout`` (much shorter than the reply
        deadline — that is the point)."""
        token = self._cycle
        if not self._try_send(site, ("ping", token)):
            return False
        conn = self._conns[site]
        deadline = time.monotonic() + self.policy.heartbeat_timeout
        try:
            while True:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return False
                if conn.poll(min(0.05, remaining)):
                    break
                proc = self._procs.get(site)
                if proc is not None and not proc.is_alive() and not conn.poll(0):
                    return False
            tag, payload = conn.recv()
        except (EOFError, OSError):
            return False
        return tag == "pong" and payload == token

    def _recv_checked(self, site: int) -> Optional[List[MatchSummary]]:
        """:meth:`_recv` plus the supervision bookkeeping: a healthy reply
        resets the site's failure streak (and closes its circuit breaker,
        emitting ``breaker-close``); a worker-reported error either raises
        :class:`MatchError` (default) or — under a policy with
        ``degrade_on_worker_error`` — counts as a site failure so the
        ladder can absorb deterministic worker-side faults (e.g. a chaos
        run unlinking the shared segment a re-attach needs)."""
        try:
            results = self._recv(site)
        except MatchError as exc:
            if not self.policy.degrade_on_worker_error:
                raise
            self._record("worker-error", site, detail=str(exc))
            return None
        if results is not None and self._sup.on_success(site):
            self._record(
                "breaker-close", site, detail="healthy reply at full isolation"
            )
            if self.metrics.enabled:
                self.metrics.set_gauge("parulel_site_mode", 0, site=site)
        return results

    def _budget_left(self, site: int) -> bool:
        if self.respawn_limit is None:
            return True
        return self.site_respawns.get(site, 0) < self.respawn_limit

    def _degrade(
        self, site: int, reason: str, breaker: bool = False
    ) -> List[MatchSummary]:
        """Move a site one rung down the policy's ladder (in-parent).

        The parent working memory holds exactly what the worker's replica
        held (the replica was built from the parent's delta log), and both
        iterate class buckets in timestamp order, so the in-parent matches
        are byte-identical to what the worker would have returned. With
        ``cooldown_cycles`` set the demotion is temporary — the supervisor
        schedules a promotion back up; the default policy makes it
        permanent (historical behaviour).
        """
        if breaker:
            self._record("breaker-open", site, detail=reason)
        mode = self._sup.note_demotion(site)
        self._kill(site)
        self._procs.pop(site, None)
        self._conns.pop(site, None)
        self.degraded_sites.add(site)
        where = "in-parent" if mode == "serial" else "on a parent thread"
        self._record(
            "degrade",
            site,
            detail=(
                f"{reason}; {len(self._site_rules[site])} rule(s) now "
                f"matched {where}"
            ),
        )
        if self.metrics.enabled:
            self.metrics.set_gauge(
                "parulel_site_mode", self._sup.rung(site), site=site
            )
        return self._degraded_match(site)

    def _degraded_match(self, site: int) -> List[MatchSummary]:
        """Match a degraded site at its current rung: ``threaded`` runs
        the in-parent match on a joined helper thread, ``serial`` inline.
        Both compute the identical summaries — the rungs differ only in
        where the work runs."""
        if self._sup.mode(site) == "threaded":
            return self._threaded_match(site)
        return self._parent_match(site)

    def _threaded_match(self, site: int) -> List[MatchSummary]:
        box: List[List[MatchSummary]] = []
        err: List[BaseException] = []

        def run() -> None:
            try:
                box.append(self._parent_match(site))
            except BaseException as exc:  # noqa: BLE001 - re-raised below
                err.append(exc)

        t = threading.Thread(
            target=run, name=f"parulel-match-site{site}-threaded", daemon=True
        )
        t.start()
        t.join()
        if err:
            raise err[0]
        return box[0]

    def _promote(self, site: int) -> None:
        """Move a demoted site one rung back up after its cool-down.

        A promotion to ``process`` respawns a worker (charged against the
        respawn budget — no budget, no promotion) and flags the site for a
        full catch-up on this cycle's dispatch; intermediate promotions
        (``serial`` → ``threaded``) just change where in-parent matching
        runs."""
        target = self.policy.ladder[self._sup.rung(site) - 1]
        if target == "process":
            if not self._budget_left(site):
                self._sup.cancel_promotion(site)
                return
            self._spawn(site)
            self.site_respawns[site] = self.site_respawns.get(site, 0) + 1
            self.degraded_sites.discard(site)
            if not self._shared:
                self._needs_catchup.add(site)
        mode = self._sup.note_promotion(site)
        self._record(
            "promote", site, detail=f"cool-down elapsed; site back to {mode!r}"
        )
        if self.metrics.enabled:
            self.metrics.set_gauge(
                "parulel_site_mode", self._sup.rung(site), site=site
            )

    def _parent_match(self, site: int) -> List[MatchSummary]:
        """Serial in-parent match of one (degraded) site's rules.

        Spans stay on the site's ``worker-<site>`` lane — the lane shows
        where the site's match work went, which after degradation is the
        parent's clock."""
        compiled = self._site_compiled.get(site)
        if compiled is None:
            compiled = compile_rules(tuple(self._site_rules[site]))
            self._site_compiled[site] = compiled
        if self.indexed and self._parent_alpha is None:
            self._parent_alpha = AlphaCache(self.wm)
            self._parent_alpha.attach()
        out: List[MatchSummary] = []
        obs = self.metrics.enabled
        with self.tracer.span(
            "match (degraded, in-parent)", lane=f"worker-{site}", cycle=self._cycle
        ):
            for cr in compiled:
                t0 = time.perf_counter() if obs else 0.0
                for inst in enumerate_matches(
                    cr,
                    self.wm,
                    alpha_source=self._parent_alpha,
                    indexed=self.indexed,
                ):
                    out.append(
                        (
                            cr.name,
                            tuple(
                                w.timestamp if w is not None else 0
                                for w in inst.wmes
                            ),
                            inst.env,
                        )
                    )
                if obs:
                    self.metrics.observe(
                        RULE_MATCH_SECONDS,
                        time.perf_counter() - t0,
                        rule=cr.name,
                        site=site,
                    )
        return out

    def _respawn_and_match(self, site: int) -> List[MatchSummary]:
        """Replace a dead/wedged worker, replay the delta log, re-match.

        Every decision — respawn now, respawn after a (seeded, jittered)
        backoff, or stop trying and demote the site down the ladder — comes
        from the :class:`~repro.resilience.supervisor.SiteSupervisor`; the
        default policy reproduces the historical behaviour exactly
        (immediate respawns; degrade on budget exhaustion or after three
        consecutive failed respawns within one cycle — a worker that cannot
        even come up is a deterministic failure no respawn will fix).
        """
        attempts = 0
        while True:
            decision = self._sup.on_failure(
                site, attempts, self._budget_left(site), self.respawn_limit
            )
            if decision.action == "demote":
                return self._degrade(
                    site, decision.reason, breaker=decision.breaker_tripped
                )
            if decision.backoff > 0:
                self._record(
                    "backoff",
                    site,
                    detail=f"sleeping {decision.backoff:.3f}s before respawn",
                )
                if self.metrics.enabled:
                    self.metrics.inc(
                        "parulel_backoff_seconds_total", decision.backoff, site=site
                    )
                time.sleep(decision.backoff)
            attempts += 1
            self._kill(site)
            self._spawn(site)
            self.respawns += 1
            self.site_respawns[site] = self.site_respawns.get(site, 0) + 1
            self._record(
                "respawn",
                site,
                detail=f"attempt {self.site_respawns[site]}"
                + (
                    f" of {self.respawn_limit}"
                    if self.respawn_limit is not None
                    else ""
                ),
            )
            if not self._catch_up_and_request(site):
                continue
            results = self._recv_checked(site)
            if results is not None:
                return results

    def _catch_up_and_request(self, site: int) -> bool:
        """Bring a freshly (re)spawned worker current and ask it to match.

        Columnar mode: ship the attach spec (the worker scans the shared
        liveness snapshot) plus a cursor-only match request. Delta mode:
        replay the cumulative wire-delta log. Either way the messages are
        pickled exactly once and their sizes feed the IPC byte metrics.
        """
        if self._shared:
            wm: ColumnarWorkingMemory = self.wm  # type: ignore[assignment]
            spec_blob = pickle.dumps(
                ("attach", wm.attach_spec()), protocol=pickle.HIGHEST_PROTOCOL
            )
            match_blob = pickle.dumps(
                ("match-shm", wm.refresh_info()),
                protocol=pickle.HIGHEST_PROTOCOL,
            )
            if not self._try_send_bytes(site, spec_blob):
                return False
            self._attached.add(site)
            ok = self._try_send_bytes(site, match_blob)
            sent_bytes = len(spec_blob) + (len(match_blob) if ok else 0)
        else:
            blob = pickle.dumps(
                ("match", list(self._log)), protocol=pickle.HIGHEST_PROTOCOL
            )
            ok = self._try_send_bytes(site, blob)
            sent_bytes = len(blob) if ok else 0
        if self.metrics.enabled and sent_bytes:
            self.metrics.inc("parulel_ipc_messages_total", direction="request")
            self.metrics.inc("parulel_ipc_bytes_total", sent_bytes, site=site)
        return ok

    def _inject_faults(self) -> None:
        """Apply this cycle's scheduled worker kills/wedges (real signals)."""
        assert self._injector is not None
        for kill in self._injector.kills_at(self._cycle):
            proc = self._procs.get(kill.site)
            if proc is not None and proc.is_alive():
                proc.kill()
                proc.join()
                self._record("kill", kill.site, detail="injected SIGKILL")
        if hasattr(signal, "SIGSTOP"):
            for wedge in self._injector.wedges_at(self._cycle):
                proc = self._procs.get(wedge.site)
                if proc is not None and proc.is_alive():
                    os.kill(proc.pid, signal.SIGSTOP)
                    self._record("wedge", wedge.site, detail="injected SIGSTOP")

    # -- the conflict set ---------------------------------------------------

    def conflict_set(self) -> List[Instantiation]:
        """Full conflict set, deterministic order (site 0's rules first).

        Delta mode ships the WM delta since the last call to every live
        worker; columnar mode ships only journal cursors (workers read the
        shared columns directly). Per-site results merge in site order.
        Crashed or unresponsive workers are respawned and caught up
        transparently; sites past their respawn budget are matched
        in-parent.
        """
        if self._closed:
            raise MatchError("ProcessMatchPool is closed")
        self._cycle += 1
        # Promotions first: a site whose cool-down elapsed gets its worker
        # back before this cycle's faults/dispatch, so the very cycle it
        # re-joins is already served at the higher rung.
        for site in self._sup.begin_cycle(self._cycle):
            self._promote(site)
        if self._injector is not None:
            self._inject_faults()
        # Heartbeat probes (policy-gated): catch dead/wedged workers now,
        # in heartbeat_timeout, instead of letting the match request burn
        # the (much longer) reply deadline first.
        unhealthy: Set[int] = set()
        if self.policy.heartbeat_every and (
            self._cycle % self.policy.heartbeat_every == 0
        ):
            for site in self.active_sites:
                if site in self.degraded_sites:
                    continue
                if not self._probe(site):
                    self._record(
                        "heartbeat-miss",
                        site,
                        detail=(
                            f"no pong within {self.policy.heartbeat_timeout}s"
                        ),
                    )
                    unhealthy.add(site)

        # Fan the request out to every live worker before collecting any
        # reply, so sites match concurrently; then merge in deterministic
        # order (degraded sites are matched serially in-parent). Both modes
        # pickle each distinct message exactly once and ship the bytes, so
        # the IPC byte metrics count precisely what crossed the pipes.
        metrics = self.metrics
        sent: Dict[int, bool] = {}
        if self._shared:
            # Columnar mode: the data already lives in shared memory. The
            # per-cycle message is just journal/heap cursors plus any
            # structural (re)mount specs — a few hundred bytes regardless
            # of how many WMEs changed.
            wm: ColumnarWorkingMemory = self.wm  # type: ignore[assignment]
            match_blob = pickle.dumps(
                ("match-shm", wm.cycle_info()), protocol=pickle.HIGHEST_PROTOCOL
            )
            spec_blob: Optional[bytes] = None
            for site in self.active_sites:
                if site in self.degraded_sites or site in unhealthy:
                    sent[site] = False
                    continue
                site_bytes = 0
                ok = True
                if site not in self._attached:
                    if spec_blob is None:
                        spec_blob = pickle.dumps(
                            ("attach", wm.attach_spec()),
                            protocol=pickle.HIGHEST_PROTOCOL,
                        )
                    ok = self._try_send_bytes(site, spec_blob)
                    if ok:
                        self._attached.add(site)
                        site_bytes += len(spec_blob)
                if ok:
                    ok = self._try_send_bytes(site, match_blob)
                    if ok:
                        site_bytes += len(match_blob)
                sent[site] = ok
                if ok and metrics.enabled:
                    metrics.inc("parulel_ipc_messages_total", direction="request")
                    metrics.inc("parulel_ipc_bytes_total", site_bytes, site=site)
        else:
            delta = self._recorder.drain()
            for wme in delta.adds:
                self._wme_by_ts[wme.timestamp] = wme
            for ts in delta.removes:
                self._wme_by_ts.pop(ts, None)
            payload: List[tuple] = []
            if not delta.empty:
                wire = delta.wire()
                self._log.append(wire)
                payload.append(wire)
            blob = pickle.dumps(
                ("match", payload), protocol=pickle.HIGHEST_PROTOCOL
            )
            for site in self.active_sites:
                if site in self.degraded_sites or site in unhealthy:
                    sent[site] = False
                    continue
                if site in self._needs_catchup:
                    # Freshly promoted worker: replay the whole log (this
                    # cycle's delta is already appended to it).
                    self._needs_catchup.discard(site)
                    sent[site] = self._catch_up_and_request(site)
                    continue
                ok = self._try_send_bytes(site, blob)
                sent[site] = ok
                if ok and metrics.enabled:
                    metrics.inc("parulel_ipc_messages_total", direction="request")
                    metrics.inc("parulel_ipc_bytes_total", len(blob), site=site)
        merged: List[Instantiation] = []
        for site in self.active_sites:
            if site in self.degraded_sites:
                results = self._degraded_match(site)
            else:
                results = self._recv_checked(site) if sent[site] else None
                if results is None:
                    results = self._respawn_and_match(site)
            for summary in results:
                merged.append(self._rebuild(summary))
        return merged

    def _rebuild(self, summary: MatchSummary) -> Instantiation:
        rule_name, timestamps, env = summary
        rule = self._rules_by_name[rule_name]
        wmes = tuple(
            self._wme_by_ts[ts] if ts else None for ts in timestamps
        )
        return Instantiation(rule, wmes, env)

    # -- lifecycle ----------------------------------------------------------

    def close(self) -> None:
        """Stop all workers and detach from the working memory (idempotent).

        Bounded: each worker gets a 1 s grace join, then an unconditional
        SIGKILL — SIGKILL interrupts even a SIGSTOP'd worker, so close
        returns promptly no matter what state the workers are in.
        """
        if self._closed:
            return
        self._closed = True
        if self._recorder is not None:
            self._recorder.detach()
        if self._shared:
            try:
                self.wm.remove_listener(self._ts_listener)
            except ValueError:  # already removed (e.g. the WM was reset)
                pass
        if self._parent_alpha is not None:
            self._parent_alpha.detach()
        for site in list(self._procs):
            self._try_send(site, ("stop",))
        for site, proc in list(self._procs.items()):
            # Whatever joining/killing the worker does, its connection must
            # be closed — leaked pipe fds outlive the pool otherwise.
            try:
                proc.join(timeout=1.0)
                if proc.is_alive():
                    proc.kill()
                    proc.join()
            finally:
                conn = self._conns.get(site)
                if conn is not None:
                    try:
                        conn.close()
                    except OSError:
                        pass

    def __enter__(self) -> "ProcessMatchPool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class ProcessMatcher(Matcher):
    """The process pool behind the standard :class:`Matcher` interface.

    WM changes only mark the conflict set dirty; the pool ships the
    accumulated delta and recomputes lazily on :meth:`instantiations` —
    once per engine cycle, exactly when the collect phase reads it.
    """

    name = "process"
    _dirty = True

    def __init__(
        self,
        rules: Sequence[Rule],
        wm: WorkingMemory,
        n_workers: Optional[int] = None,
        assignment: "Optional[Assignment | str]" = None,
        timeout: float = DEFAULT_TIMEOUT,
        respawn_limit: Optional[int] = None,
        fault_plan: Optional[FaultPlan] = None,
        supervisor: Optional[SupervisorPolicy] = None,
        tracer=None,
        metrics=None,
        flightrec=None,
        indexed: bool = True,
        vector_probe: bool = True,
    ) -> None:
        # The pool's recorder primes itself with the pre-existing WMEs, so
        # it must attach before Matcher.__init__ replays them through
        # _on_add (which only marks the cache dirty here).
        if n_workers is None:
            n_workers = default_worker_count()
        self.pool = ProcessMatchPool(
            rules,
            wm,
            n_workers,
            assignment=assignment,
            timeout=timeout,
            respawn_limit=respawn_limit,
            fault_plan=fault_plan,
            supervisor=supervisor,
            tracer=tracer,
            metrics=metrics,
            flightrec=flightrec,
            indexed=indexed,
            vector_probe=vector_probe,
        )
        super().__init__(rules, wm, indexed=indexed)

    def _on_add(self, wme: WME) -> None:
        self._dirty = True

    def _on_remove(self, wme: WME) -> None:
        self._dirty = True

    def instantiations(self) -> List[Instantiation]:
        if self._dirty:
            fresh = ConflictSet()
            for inst in self.pool.conflict_set():
                fresh.add(inst)
            self.conflict_set = fresh
            self._dirty = False
        return self.conflict_set.instantiations()

    def drain_fault_events(self) -> List[FaultEvent]:
        """Respawn/degrade/injection events since the last drain — the
        engine attaches them to the cycle's report."""
        return self.pool.drain_fault_events()

    def detach(self) -> None:
        super().detach()
        self.pool.close()

    close = detach
