"""Process-parallel match fan-out: real data parallelism past the GIL.

:mod:`repro.parallel.threaded` measures the GIL ceiling — pure-Python match
work fanned out to threads does not scale, which Table 4 documents. This
module is the escape hatch: :class:`ProcessMatchPool` keeps one persistent
``multiprocessing`` worker per site, partitions the rules across sites with
the same :class:`~repro.parallel.partition.Assignment` machinery the
simulated machines use, and computes the conflict set with genuinely
concurrent interpreters (one GIL each).

What keeps it fast and correct:

- **Delta shipping.** Each worker owns a private working-memory replica.
  Per cycle the pool drains a :class:`~repro.wm.memory.DeltaRecorder` and
  broadcasts only the net adds/removes since the previous cycle — never
  the whole memory. Timestamps identify WMEs across replicas, so removes
  are a timestamp list and adds are ``(class, attrs, timestamp)`` records.
- **Deterministic merge.** Workers return compact match summaries
  ``(rule name, per-CE timestamps, environment)``; the parent rebuilds
  :class:`~repro.match.instantiation.Instantiation` objects against its own
  WME store and concatenates per-site results in site order, rules in
  compiled order within a site — byte-identical to the sequential matchers
  (the differential suite asserts this).
- **Robustness.** Every cycle applies a per-worker timeout; a crashed,
  wedged, or killed worker is respawned and caught up by replaying the
  cumulative delta log, then re-asked for its site's matches. A run
  survives ``kill -9`` of any worker mid-cycle (tests inject exactly
  that).
- **Lifecycle.** ``close()`` is idempotent, the pool is a context manager,
  and workers are daemonic so a leaked pool cannot wedge interpreter
  shutdown — mirroring :class:`~repro.parallel.threaded.ThreadedMatchPool`.

:class:`ProcessMatcher` adapts the pool to the standard
:class:`~repro.match.interface.Matcher` interface so engines can select it
with ``EngineConfig(matcher="process")`` (or ``"process:N"`` for an
explicit worker count) like any other backend.
"""

from __future__ import annotations

import multiprocessing
import os
from multiprocessing.connection import Connection
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import MatchError
from repro.lang.ast import Rule, Value
from repro.match.compile import compile_rules
from repro.match.instantiation import ConflictSet, Instantiation
from repro.match.interface import Matcher
from repro.match.join import enumerate_matches
from repro.parallel.partition import Assignment, round_robin_assignment
from repro.wm.memory import DeltaRecorder, WMDelta, WorkingMemory
from repro.wm.wme import WME

__all__ = ["ProcessMatchPool", "ProcessMatcher", "default_worker_count"]

#: One match found by a worker: (rule name, per-CE timestamps (0 for a
#: negated CE), variable environment). Small, picklable, and enough for the
#: parent to rebuild the Instantiation against its own WME objects.
MatchSummary = Tuple[str, Tuple[int, ...], Dict[str, Value]]

#: Per-worker, per-cycle reply deadline (seconds). Generous: it exists to
#: unwedge a hung worker, not to police slow matches.
DEFAULT_TIMEOUT = 60.0


def default_worker_count() -> int:
    """Workers to use when the caller does not say: the usable cores,
    capped at 4 (the paper-era site counts; fan-out beyond match
    parallelism only adds IPC)."""
    try:
        n = len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        n = os.cpu_count() or 1
    return max(1, min(4, n))


# ---------------------------------------------------------------------------
# Worker side
# ---------------------------------------------------------------------------


def _worker_main(conn: Connection, rules: Tuple[Rule, ...]) -> None:
    """Worker loop: maintain a WM replica, answer match requests.

    Protocol (parent → worker):

    - ``("match", [wire_delta, ...])`` — apply the deltas in order, then
      reply ``("ok", [MatchSummary, ...])`` for this site's rules;
    - ``("stop",)`` — exit.

    Any exception is reported as ``("err", message)``; the parent treats it
    as fatal (a deterministic error would recur on respawn).
    """
    compiled = compile_rules(rules)
    wm = WorkingMemory()
    by_ts: Dict[int, WME] = {}
    while True:
        try:
            msg = conn.recv()
        except (EOFError, OSError):
            return
        if msg[0] == "stop":
            return
        try:
            _tag, deltas = msg
            for wire in deltas:
                WMDelta.apply_wire(wm, by_ts, wire)
            out: List[MatchSummary] = []
            for cr in compiled:
                for inst in enumerate_matches(cr, wm):
                    out.append(
                        (
                            cr.name,
                            tuple(
                                w.timestamp if w is not None else 0
                                for w in inst.wmes
                            ),
                            inst.env,
                        )
                    )
            conn.send(("ok", out))
        except Exception as exc:  # noqa: BLE001 - forwarded to the parent
            try:
                conn.send(("err", f"{type(exc).__name__}: {exc}"))
            except (BrokenPipeError, OSError):
                return


# ---------------------------------------------------------------------------
# Parent side
# ---------------------------------------------------------------------------


class ProcessMatchPool:
    """Conflict-set computation fanned out to persistent worker processes.

    Rules are partitioned across ``n_workers`` sites (round-robin unless an
    :class:`~repro.parallel.partition.Assignment` is given); sites with no
    rules get no process. Working memory must not be mutated while
    :meth:`conflict_set` runs — the engines never do (match and apply are
    separate phases of the cycle).
    """

    def __init__(
        self,
        rules: Sequence[Rule],
        wm: WorkingMemory,
        n_workers: int,
        assignment: Optional[Assignment] = None,
        timeout: float = DEFAULT_TIMEOUT,
        start_method: Optional[str] = None,
    ) -> None:
        if n_workers < 1:
            raise ValueError("need at least one worker")
        self.wm = wm
        self.n_workers = n_workers
        self.timeout = timeout
        self.assignment = assignment or round_robin_assignment(rules, n_workers)
        self._rules_by_name: Dict[str, Rule] = {r.name: r for r in rules}
        self._site_rules: List[List[Rule]] = [[] for _ in range(n_workers)]
        for rule in rules:
            self._site_rules[self.assignment.site_of[rule.name]].append(rule)
        #: Sites that actually carry rules — the only ones given a process.
        self.active_sites: Tuple[int, ...] = tuple(
            s for s in range(n_workers) if self._site_rules[s]
        )
        if start_method is None:
            start_method = (
                "fork"
                if "fork" in multiprocessing.get_all_start_methods()
                else "spawn"
            )
        self._ctx = multiprocessing.get_context(start_method)
        self._recorder = DeltaRecorder(wm)
        #: Cumulative wire-delta log since pool creation — the catch-up
        #: script replayed into a respawned worker.
        self._log: List[tuple] = []
        #: Parent-side timestamp index for rebuilding Instantiations with
        #: the exact WME objects the sequential matchers would use.
        self._wme_by_ts: Dict[int, WME] = {}
        self._conns: Dict[int, Connection] = {}
        self._procs: Dict[int, multiprocessing.process.BaseProcess] = {}
        #: Workers respawned after a crash/timeout (tests assert on this).
        self.respawns = 0
        self._closed = False
        for site in self.active_sites:
            self._spawn(site)

    # -- worker management -------------------------------------------------

    def _spawn(self, site: int) -> None:
        parent_conn, child_conn = self._ctx.Pipe()
        proc = self._ctx.Process(
            target=_worker_main,
            args=(child_conn, tuple(self._site_rules[site])),
            name=f"parulel-match-site{site}",
            daemon=True,
        )
        proc.start()
        child_conn.close()
        self._conns[site] = parent_conn
        self._procs[site] = proc

    def _kill(self, site: int) -> None:
        proc = self._procs.get(site)
        if proc is not None and proc.is_alive():
            proc.kill()
            proc.join()
        conn = self._conns.get(site)
        if conn is not None:
            conn.close()

    def _try_send(self, site: int, msg: tuple) -> bool:
        try:
            self._conns[site].send(msg)
            return True
        except (BrokenPipeError, OSError):
            return False

    def _recv(self, site: int) -> Optional[List[MatchSummary]]:
        """One reply, or ``None`` when the worker is dead or wedged."""
        conn = self._conns[site]
        try:
            if not conn.poll(self.timeout):
                return None
            tag, payload = conn.recv()
        except (EOFError, OSError):
            return None
        if tag == "err":
            raise MatchError(f"match worker for site {site} failed: {payload}")
        return payload

    def _respawn_and_match(self, site: int) -> List[MatchSummary]:
        """Replace a dead/wedged worker, replay the delta log, re-match."""
        self._kill(site)
        self._spawn(site)
        self.respawns += 1
        if not self._try_send(site, ("match", list(self._log))):
            raise MatchError(
                f"match worker for site {site} died immediately after respawn"
            )
        results = self._recv(site)
        if results is None:
            raise MatchError(
                f"match worker for site {site} unresponsive after respawn "
                f"(timeout {self.timeout}s)"
            )
        return results

    # -- the conflict set ---------------------------------------------------

    def conflict_set(self) -> List[Instantiation]:
        """Full conflict set, deterministic order (site 0's rules first).

        Ships the WM delta since the last call to every live worker, then
        merges per-site results in site order. Crashed or unresponsive
        workers are respawned and caught up transparently.
        """
        if self._closed:
            raise MatchError("ProcessMatchPool is closed")
        delta = self._recorder.drain()
        for wme in delta.adds:
            self._wme_by_ts[wme.timestamp] = wme
        for ts in delta.removes:
            self._wme_by_ts.pop(ts, None)
        payload: List[tuple] = []
        if not delta.empty:
            wire = delta.wire()
            self._log.append(wire)
            payload.append(wire)

        # Fan the request out to every worker before collecting any reply,
        # so sites match concurrently; then merge in deterministic order.
        sent = {
            site: self._try_send(site, ("match", payload))
            for site in self.active_sites
        }
        merged: List[Instantiation] = []
        for site in self.active_sites:
            results = self._recv(site) if sent[site] else None
            if results is None:
                results = self._respawn_and_match(site)
            for summary in results:
                merged.append(self._rebuild(summary))
        return merged

    def _rebuild(self, summary: MatchSummary) -> Instantiation:
        rule_name, timestamps, env = summary
        rule = self._rules_by_name[rule_name]
        wmes = tuple(
            self._wme_by_ts[ts] if ts else None for ts in timestamps
        )
        return Instantiation(rule, wmes, env)

    # -- lifecycle ----------------------------------------------------------

    def close(self) -> None:
        """Stop all workers and detach from the working memory (idempotent)."""
        if self._closed:
            return
        self._closed = True
        self._recorder.detach()
        for site in self.active_sites:
            self._try_send(site, ("stop",))
        for site in self.active_sites:
            proc = self._procs[site]
            proc.join(timeout=1.0)
            if proc.is_alive():
                proc.kill()
                proc.join()
            self._conns[site].close()

    def __enter__(self) -> "ProcessMatchPool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class ProcessMatcher(Matcher):
    """The process pool behind the standard :class:`Matcher` interface.

    WM changes only mark the conflict set dirty; the pool ships the
    accumulated delta and recomputes lazily on :meth:`instantiations` —
    once per engine cycle, exactly when the collect phase reads it.
    """

    name = "process"
    _dirty = True

    def __init__(
        self,
        rules: Sequence[Rule],
        wm: WorkingMemory,
        n_workers: Optional[int] = None,
        timeout: float = DEFAULT_TIMEOUT,
    ) -> None:
        # The pool's recorder primes itself with the pre-existing WMEs, so
        # it must attach before Matcher.__init__ replays them through
        # _on_add (which only marks the cache dirty here).
        if n_workers is None:
            n_workers = default_worker_count()
        self.pool = ProcessMatchPool(rules, wm, n_workers, timeout=timeout)
        super().__init__(rules, wm)

    def _on_add(self, wme: WME) -> None:
        self._dirty = True

    def _on_remove(self, wme: WME) -> None:
        self._dirty = True

    def instantiations(self) -> List[Instantiation]:
        if self._dirty:
            fresh = ConflictSet()
            for inst in self.pool.conflict_set():
                fresh.add(inst)
            self.conflict_set = fresh
            self._dirty = False
        return self.conflict_set.instantiations()

    def detach(self) -> None:
        super().detach()
        self.pool.close()

    close = detach
