"""Speedup/efficiency series for the figure benches."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

__all__ = ["SpeedupSeries"]


@dataclass
class SpeedupSeries:
    """Accumulates (P, time) points and derives speedup/efficiency.

    The P=1 point must be present before reading speedups.
    """

    label: str = ""
    points: Dict[int, float] = field(default_factory=dict)

    def add(self, n_sites: int, ticks: float) -> None:
        if n_sites < 1:
            raise ValueError("site counts start at 1")
        if ticks <= 0:
            raise ValueError("time must be positive")
        self.points[n_sites] = ticks

    @property
    def baseline(self) -> float:
        try:
            return self.points[1]
        except KeyError:
            raise ValueError("no P=1 baseline recorded") from None

    def speedup(self, n_sites: int) -> float:
        return self.baseline / self.points[n_sites]

    def efficiency(self, n_sites: int) -> float:
        return self.speedup(n_sites) / n_sites

    def series(self) -> List[Tuple[int, float, float, float]]:
        """Sorted rows of (P, ticks, speedup, efficiency)."""
        return [
            (p, t, self.speedup(p), self.efficiency(p))
            for p, t in sorted(self.points.items())
        ]

    def is_monotone_to(self, n_sites: int, slack: float = 0.02) -> bool:
        """Speedup non-decreasing (within ``slack``) up to ``n_sites`` —
        the shape check the figure benches assert."""
        prev = 0.0
        for p, _t, s, _e in self.series():
            if p > n_sites:
                break
            if s < prev * (1.0 - slack):
                return False
            prev = max(prev, s)
        return True
