"""Supervision policy for process-backed match workers.

:class:`~repro.parallel.process.ProcessMatchPool` owns the mechanics of
spawning, killing and catching up workers; this module owns the *policy*:
when to retry, how long to wait, when to stop trying, and when to try
again. Splitting the two keeps the pool's hot path free of decisions and
makes the policy unit-testable without real processes.

The pieces, per site:

- **Backoff.** Each consecutive failure doubles a base delay (capped),
  multiplied by deterministic seeded jitter — two pools built with the
  same seed and fault history sleep the same schedule, so recovery tests
  stay reproducible.
- **Circuit breaker.** ``breaker_failures`` failures within a sliding
  window of ``breaker_window`` cycles trips the breaker: the pool stops
  respawning and demotes the site immediately instead of burning the
  respawn budget on a flapping worker.
- **Degradation ladder.** Demotion moves the site one rung down
  ``ladder`` — ``process`` (its own worker) → ``threaded`` (matched
  in-parent on a helper thread) → ``serial`` (matched in-parent inline).
  Every rung computes byte-identical matches (the parent working memory
  holds exactly the replica contents in timestamp order); the ladder
  trades isolation for survival, never correctness.
- **Re-promotion.** After ``cooldown_cycles`` quiet cycles (doubling per
  breaker trip, capped), a demoted site is promoted one rung back up; a
  promotion back to ``process`` respawns a worker and the breaker closes
  on its first healthy reply.

The default policy reproduces the pool's historical behaviour exactly:
no backoff, no heartbeats, no breaker, a two-rung ladder
(``process`` → ``serial``) and no re-promotion — so engines that never
pass a policy see byte- and event-identical runs.
"""

from __future__ import annotations

import random
from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional, Sequence, Tuple

__all__ = [
    "SupervisorPolicy",
    "SiteSupervisor",
    "SupervisorDecision",
    "LADDER_RUNGS",
    "FULL_LADDER",
]

#: Rung names a ladder may use, in strictly descending order of isolation.
LADDER_RUNGS = ("process", "threaded", "serial")

#: The three-rung ladder: worker process → in-parent thread → in-parent.
FULL_LADDER = ("process", "threaded", "serial")

#: A worker that cannot even come up is a deterministic failure no respawn
#: will fix; after this many consecutive attempts within one cycle the
#: site is demoted rather than spun on.
MAX_ATTEMPTS_PER_CYCLE = 3


@dataclass(frozen=True)
class SupervisorPolicy:
    """Tunable supervision knobs (see the module docstring).

    The zero-argument default is the legacy policy: respawn immediately,
    degrade straight to in-parent serial when the budget runs out, never
    re-promote.
    """

    #: Degradation rungs, most to least isolated. Must start at
    #: ``"process"`` and descend through :data:`LADDER_RUNGS` in order.
    ladder: Tuple[str, ...] = ("process", "serial")
    #: First-failure respawn delay in seconds; each consecutive failure
    #: doubles it. ``0`` = respawn immediately (legacy).
    backoff_base: float = 0.0
    #: Ceiling on the computed backoff delay (before jitter).
    backoff_cap: float = 30.0
    #: Jitter fraction: the delay is scaled by ``1 + jitter * rng()`` with
    #: a seeded RNG, de-synchronizing respawn stampedes deterministically.
    backoff_jitter: float = 0.5
    #: Seed for the jitter RNG (one stream per pool, consumed in site
    #: failure order — deterministic for a given fault history).
    seed: int = 0
    #: Probe live workers with a ping/pong heartbeat every N cycles before
    #: dispatching work; ``0`` = never (legacy). A missed heartbeat fails
    #: the worker over immediately instead of burning the reply deadline.
    heartbeat_every: int = 0
    #: How long (seconds) to wait for a heartbeat pong.
    heartbeat_timeout: float = 1.0
    #: Failures within ``breaker_window`` cycles that trip the per-site
    #: circuit breaker; ``None`` = breaker disabled (legacy).
    breaker_failures: Optional[int] = None
    #: Sliding failure-count window, in conflict-set cycles.
    breaker_window: int = 16
    #: Quiet cycles before a demoted site is promoted one rung back up,
    #: doubling per breaker trip (capped at ``cooldown_cap``); ``0`` =
    #: demotion is permanent (legacy).
    cooldown_cycles: int = 0
    #: Ceiling on the per-trip cool-down growth.
    cooldown_cap: int = 256
    #: Treat a worker's ``("err", ...)`` reply as a site failure (demote
    #: down the ladder) instead of raising ``MatchError``. Chaos runs set
    #: this: an unlinked shared segment makes every re-attach fail
    #: deterministically, and the parent can still match correctly.
    degrade_on_worker_error: bool = False

    def __post_init__(self) -> None:
        if not self.ladder or self.ladder[0] != "process":
            raise ValueError("ladder must start at 'process'")
        if len(self.ladder) < 2:
            raise ValueError("ladder needs at least one rung below 'process'")
        order = [r for r in LADDER_RUNGS if r in self.ladder]
        if tuple(order) != self.ladder or len(set(self.ladder)) != len(self.ladder):
            raise ValueError(
                f"ladder {self.ladder!r} must descend through {LADDER_RUNGS} "
                f"without repeats"
            )
        if self.backoff_base < 0 or self.backoff_cap <= 0 or self.backoff_jitter < 0:
            raise ValueError("backoff_base/backoff_cap/backoff_jitter must be >= 0 (cap > 0)")
        if self.heartbeat_every < 0:
            raise ValueError("heartbeat_every must be >= 0 (0 disables probes)")
        if self.heartbeat_timeout <= 0:
            raise ValueError("heartbeat_timeout must be > 0 seconds")
        if self.breaker_failures is not None and self.breaker_failures < 1:
            raise ValueError("breaker_failures must be >= 1 (None disables)")
        if self.breaker_window < 1:
            raise ValueError("breaker_window must be >= 1 cycle")
        if self.cooldown_cycles < 0 or self.cooldown_cap < 1:
            raise ValueError("cooldown_cycles must be >= 0, cooldown_cap >= 1")


@dataclass
class SupervisorDecision:
    """What to do about one site failure: respawn (after ``backoff``
    seconds) or demote (with the reason; ``breaker_tripped`` marks a
    circuit-breaker trip so the pool can emit the ``breaker-open``
    event)."""

    action: str  # "respawn" | "demote"
    reason: str = ""
    backoff: float = 0.0
    breaker_tripped: bool = False


class SiteSupervisor:
    """Per-site supervision state machine (pure policy, no processes)."""

    def __init__(self, policy: SupervisorPolicy, sites: Sequence[int]) -> None:
        self.policy = policy
        self._rng = random.Random(policy.seed)
        self._rung: Dict[int, int] = {s: 0 for s in sites}
        self._consecutive: Dict[int, int] = {s: 0 for s in sites}
        self._fail_cycles: Dict[int, Deque[int]] = {s: deque() for s in sites}
        self._trips: Dict[int, int] = {s: 0 for s in sites}
        self._breaker_open: Dict[int, bool] = {s: False for s in sites}
        self._next_promote: Dict[int, Optional[int]] = {s: None for s in sites}
        self._cycle = 0

    # -- queries -------------------------------------------------------------

    def rung(self, site: int) -> int:
        return self._rung[site]

    def mode(self, site: int) -> str:
        """Current rung name for the site (``process`` when healthy)."""
        return self.policy.ladder[self._rung[site]]

    def breaker_open(self, site: int) -> bool:
        return self._breaker_open[site]

    # -- cycle hooks -----------------------------------------------------------

    def begin_cycle(self, cycle: int) -> List[int]:
        """Advance the supervisor clock; return the demoted sites whose
        cool-down has elapsed, due for promotion one rung up."""
        self._cycle = cycle
        if not self.policy.cooldown_cycles:
            return []
        due = []
        for site, at in self._next_promote.items():
            if at is not None and cycle >= at and self._rung[site] > 0:
                due.append(site)
        return due

    def on_failure(
        self,
        site: int,
        attempts: int,
        budget_left: bool,
        budget_limit: Optional[int],
    ) -> SupervisorDecision:
        """Record one site failure and decide: respawn or demote.

        ``attempts`` counts respawns already tried for this failure within
        the current cycle (the deterministic-failure guard); the respawn
        budget and the sliding breaker window persist across cycles.
        """
        policy = self.policy
        self._consecutive[site] += 1
        window = self._fail_cycles[site]
        window.append(self._cycle)
        floor = self._cycle - policy.breaker_window
        while window and window[0] <= floor:
            window.popleft()
        if not budget_left:
            return SupervisorDecision(
                "demote", reason=f"respawn budget ({budget_limit}) exhausted"
            )
        if attempts >= MAX_ATTEMPTS_PER_CYCLE:
            return SupervisorDecision(
                "demote",
                reason=f"{attempts} consecutive respawns failed in one cycle",
            )
        if (
            policy.breaker_failures is not None
            and len(window) >= policy.breaker_failures
        ):
            return SupervisorDecision(
                "demote",
                reason=(
                    f"circuit breaker opened: {len(window)} failure(s) "
                    f"within {policy.breaker_window} cycle(s)"
                ),
                breaker_tripped=True,
            )
        backoff = 0.0
        if policy.backoff_base > 0:
            backoff = min(
                policy.backoff_cap,
                policy.backoff_base * (2 ** (self._consecutive[site] - 1)),
            )
            backoff *= 1.0 + policy.backoff_jitter * self._rng.random()
        return SupervisorDecision("respawn", backoff=backoff)

    def on_success(self, site: int) -> bool:
        """Record a healthy reply. Returns ``True`` exactly when this
        closes the site's circuit breaker (back at the ``process`` rung
        after a trip) so the pool can emit ``breaker-close``."""
        self._consecutive[site] = 0
        if self._rung[site] == 0 and self._breaker_open[site]:
            self._breaker_open[site] = False
            self._trips[site] = 0
            self._fail_cycles[site].clear()
            self._next_promote[site] = None
            return True
        return False

    # -- ladder transitions ----------------------------------------------------

    def note_demotion(self, site: int) -> str:
        """Move the site one rung down (clamped to the ladder's bottom);
        schedule re-promotion after the (trip-doubled) cool-down. Returns
        the new rung name."""
        policy = self.policy
        self._rung[site] = min(self._rung[site] + 1, len(policy.ladder) - 1)
        self._consecutive[site] = 0
        self._breaker_open[site] = True
        self._trips[site] += 1
        self._schedule_promotion(site)
        return policy.ladder[self._rung[site]]

    def note_promotion(self, site: int) -> str:
        """Move the site one rung up; schedule the next climb if it is
        still below ``process``. Returns the new rung name."""
        self._rung[site] = max(0, self._rung[site] - 1)
        if self._rung[site] > 0:
            self._schedule_promotion(site)
        else:
            self._next_promote[site] = None
        return self.policy.ladder[self._rung[site]]

    def cancel_promotion(self, site: int) -> None:
        """Stop trying to promote the site (e.g. respawn budget gone)."""
        self._next_promote[site] = None

    def _schedule_promotion(self, site: int) -> None:
        policy = self.policy
        if not policy.cooldown_cycles:
            self._next_promote[site] = None
            return
        cool = min(
            policy.cooldown_cap,
            policy.cooldown_cycles * (2 ** max(0, self._trips[site] - 1)),
        )
        self._next_promote[site] = self._cycle + cool
