"""Seeded chaos harness: kill things mid-run, prove recovery is *exact*.

The strongest claim the resilience layer makes is not "the run survives" —
it is "the recovered run is byte-identical to a run nothing happened to".
This module turns that claim into a differential test:

1. **Clean run.** Execute a bundled workload to quiescence on the serial
   RETE matcher; record the per-cycle firing sequence, the ``(write ...)``
   output, the cycle count, and the final working memory (as facts text —
   the byte-level artifact compared at the end).
2. **Chaos run.** Execute the same workload on the process match backend
   under a seeded :class:`~repro.faults.FaultPlan` of real worker
   ``SIGKILL``\\ s, a full three-rung
   :class:`~repro.resilience.supervisor.SupervisorPolicy`, and a rotating
   :class:`~repro.resilience.checkpoint.CheckpointStore` written every
   cycle. At a seeded cycle the run "crashes" (it simply stops — a real
   crash executes no cleanup either). With the columnar backend, a seeded
   mid-run fault also unlinks one live ``/dev/shm`` segment, so respawned
   workers cannot re-attach and the degradation ladder must absorb the
   site (``degrade_on_worker_error``).
3. **Corruption.** The newest checkpoint file is truncated at a seeded
   offset — the torn write a ``kill -9`` during checkpointing produces.
4. **Recovery.** A fresh engine restores from the store (which must fall
   back past the torn file to the last checkpoint that verifies) and runs
   to completion.
5. **Verdict.** The merged firing sequence (chaos-run cycles up to the
   restore point + recovered cycles), the output, the cycle count, and
   the final WM bytes must all equal the clean run's, for ``dict`` and
   ``columnar`` WM backends alike.
6. **Black box.** The chaos engine runs with the (default-on) flight
   recorder and a pinned dump path. The injected worker ``SIGKILL``\\ s
   must have produced a ``*.blackbox`` dump that decodes
   (:func:`~repro.obs.blackbox.load_blackbox`), and for every killed
   site whose ring saw any match work, the post-mortem "last in-flight
   rule" query must name a rule of the program — the shared-memory ring
   outlives the killed worker, which is the recorder's core claim.
7. **Janitor.** A child process building a columnar store is SIGKILLed
   mid-life (leaving real orphaned segments);
   :func:`~repro.resilience.janitor.sweep_orphans` must reclaim exactly
   those segments — the default sweep also covers orphaned
   flight-recorder rings — and a final sweep must find nothing left
   behind by the chaos run itself.

Run it directly (``scripts/check.sh --resilience`` does)::

    python -m repro.resilience.chaos --workload tc --backend columnar --seed 7
"""

from __future__ import annotations

import argparse
import multiprocessing
import os
import random
import signal
import sys
import tempfile
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core import EngineConfig, ParulelEngine
from repro.faults import FaultPlan, WorkerKill
from repro.obs.blackbox import load_blackbox
from repro.programs import REGISTRY
from repro.resilience.checkpoint import CheckpointStore, EngineCheckpointer
from repro.resilience.janitor import sweep_orphans
from repro.resilience.supervisor import FULL_LADDER, SupervisorPolicy
from repro.wm.io import dumps as dump_wm_text

__all__ = ["ChaosResult", "run_chaos", "kill_columnar_child", "main"]

#: Workers for the chaos run — two sites is the smallest pool where a kill
#: leaves a healthy peer to merge against.
N_WORKERS = 2


@dataclass
class ChaosResult:
    """One chaos scenario's outcome, mismatches listed when not ``ok``."""

    workload: str
    backend: str
    seed: int
    clean_cycles: int
    crash_cycle: int
    restored_cycle: int
    skipped: List[Tuple[str, str]] = field(default_factory=list)
    fault_kinds: Dict[str, int] = field(default_factory=dict)
    mismatches: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.mismatches

    def summary(self) -> str:
        verdict = "OK" if self.ok else "MISMATCH"
        faults = (
            ", ".join(f"{k}={v}" for k, v in sorted(self.fault_kinds.items()))
            or "none"
        )
        lines = [
            f"[chaos] {self.workload}/{self.backend} seed={self.seed}: {verdict}",
            f"  clean run: {self.clean_cycles} cycles; crashed at cycle "
            f"{self.crash_cycle}, restored at cycle {self.restored_cycle}",
            f"  faults injected/absorbed: {faults}",
            f"  checkpoints skipped on restore: {len(self.skipped)}",
        ]
        lines += [f"  MISMATCH: {m}" for m in self.mismatches]
        return "\n".join(lines)


def _drive(engine: ParulelEngine, on_cycle=None, stop_at: Optional[int] = None):
    """Step an engine to quiescence (or ``stop_at`` cycles), returning the
    ``(cycle, fired)`` sequence. ``on_cycle`` runs after every report —
    the chaos run checkpoints there."""
    seq: List[Tuple[int, int]] = []
    while not engine.halted:
        report = engine.step()
        if report is None:
            break
        seq.append((report.cycle, report.fired))
        if on_cycle is not None:
            on_cycle(report)
        if stop_at is not None and engine.cycle >= stop_at:
            break
    return seq


def _wm_bytes(engine: ParulelEngine) -> str:
    return dump_wm_text(engine.wm)


def run_chaos(
    workload: str = "tc",
    backend: str = "dict",
    seed: int = 0,
    checkpoint_every: int = 1,
    full_every: int = 3,
    keep: int = 2,
) -> ChaosResult:
    """One full chaos scenario (module docstring); raises on setup errors,
    returns a :class:`ChaosResult` whose ``mismatches`` list the verdict."""
    builder = REGISTRY.get(workload)
    if builder is None:
        raise ValueError(
            f"unknown workload {workload!r} (choose from {sorted(REGISTRY)})"
        )
    rng = random.Random(seed)

    # -- 1. clean reference ------------------------------------------------
    clean_wl = builder()
    clean = ParulelEngine(clean_wl.program)
    clean_wl.setup(clean)
    clean_seq = _drive(clean)
    clean_out = list(clean.output)
    clean_cycles = clean.cycle
    clean_wm = _wm_bytes(clean)
    clean.close()
    if clean_cycles < 4:
        raise ValueError(
            f"workload {workload!r} quiesces in {clean_cycles} cycles — too "
            f"short to crash mid-run meaningfully"
        )

    # -- 2. chaos run ---------------------------------------------------------
    crash_cycle = rng.randint(3, clean_cycles - 1)
    kills = tuple(
        WorkerKill(cycle=rng.randint(1, crash_cycle), site=rng.randrange(N_WORKERS))
        for _ in range(2)
    )
    policy = SupervisorPolicy(
        ladder=FULL_LADDER,
        backoff_base=0.001,
        backoff_jitter=0.5,
        seed=seed,
        heartbeat_every=1,
        heartbeat_timeout=2.0,
        breaker_failures=4,
        breaker_window=8,
        cooldown_cycles=2,
        degrade_on_worker_error=True,
    )
    tmp = tempfile.mkdtemp(prefix="parulel-chaos-")
    store_dir = os.path.join(tmp, "ckpt")
    blackbox_path = os.path.join(tmp, "chaos.blackbox")
    chaos_wl = builder()
    chaos = ParulelEngine(
        chaos_wl.program,
        EngineConfig(
            matcher=f"process:{N_WORKERS}",
            wm_backend=backend,
            matcher_timeout=30.0,
            fault_plan=FaultPlan(seed=seed, kills=kills),
            supervisor=policy,
            blackbox_path=blackbox_path,
        ),
    )
    chaos_wl.setup(chaos)
    ckpt = EngineCheckpointer(
        chaos, CheckpointStore(store_dir, keep=keep), full_every=full_every
    )
    ckpt.save()  # cycle-0 baseline, so even a cycle-1 crash can restore

    unlink_at = rng.randint(2, crash_cycle) if backend == "columnar" else None

    def on_cycle(report) -> None:
        if unlink_at is not None and report.cycle == unlink_at:
            # Tear one live shared segment out from under the store: the
            # parent's mapping survives (unlink removes only the name) but
            # any respawned worker's re-attach now fails deterministically.
            names = chaos.wm.segment_names
            victim = names[rng.randrange(len(names))]
            try:
                os.unlink(os.path.join("/dev/shm", victim))
            except FileNotFoundError:
                pass
        if report.cycle % checkpoint_every == 0:
            ckpt.save()

    chaos_seq = _drive(chaos, on_cycle=on_cycle, stop_at=crash_cycle)
    fault_kinds: Dict[str, int] = {}
    killed_sites: List[int] = []
    for event in chaos.fault_events:
        fault_kinds[event.kind] = fault_kinds.get(event.kind, 0) + 1
        if event.kind == "kill" and event.site not in killed_sites:
            killed_sites.append(event.site)
    # The "crash": the run just stops. close() stands in for the kernel
    # reaping the process — it must not be load-bearing for recovery (all
    # durable state is already in the store).
    chaos.close()

    # -- 3. corruption ----------------------------------------------------
    entries = sorted(
        n for n in os.listdir(store_dir) if not n.endswith(".tmp")
    )
    newest = os.path.join(store_dir, entries[-1])
    size = os.path.getsize(newest)
    with open(newest, "r+b") as fh:
        fh.truncate(rng.randrange(size))

    # -- 4. recovery --------------------------------------------------------
    load = CheckpointStore(store_dir).load()
    recovered_wl = builder()
    recovered = ParulelEngine.restore(
        recovered_wl.program, load.state, EngineConfig(wm_backend=backend)
    )
    restored_cycle = recovered.cycle
    recovered_seq = _drive(recovered)

    # -- 5. verdict ---------------------------------------------------------
    result = ChaosResult(
        workload=workload,
        backend=backend,
        seed=seed,
        clean_cycles=clean_cycles,
        crash_cycle=crash_cycle,
        restored_cycle=restored_cycle,
        skipped=[(p, r) for p, r in load.skipped],
        fault_kinds=fault_kinds,
    )
    merged_seq = [
        (c, f) for c, f in chaos_seq if c <= restored_cycle
    ] + recovered_seq
    if recovered.cycle != clean_cycles:
        result.mismatches.append(
            f"cycle count: recovered {recovered.cycle} != clean {clean_cycles}"
        )
    if merged_seq != clean_seq:
        result.mismatches.append(
            f"firing sequence diverged: merged {merged_seq} != clean {clean_seq}"
        )
    if list(recovered.output) != clean_out:
        result.mismatches.append(
            f"output diverged: {len(recovered.output)} line(s) vs "
            f"{len(clean_out)} clean"
        )
    recovered_wm = _wm_bytes(recovered)
    if recovered_wm != clean_wm:
        result.mismatches.append("final working memory bytes diverged")
    recovered.close()

    # -- 6. black box -------------------------------------------------------
    # Any worker death observed during the chaos run must have left a
    # decodable post-mortem dump behind: the shared-memory rings belong to
    # the parent, so even a SIGKILLed worker's journal survives into it.
    if killed_sites:
        if not os.path.exists(blackbox_path):
            result.mismatches.append(
                f"no blackbox dump at {blackbox_path} after "
                f"{fault_kinds.get('kill', 0)} injected SIGKILL(s)"
            )
        else:
            try:
                bb = load_blackbox(blackbox_path)
            except Exception as exc:  # noqa: BLE001 - any decode failure
                result.mismatches.append(f"blackbox dump unreadable: {exc}")
            else:
                rule_names = set(bb.rules)
                timeline_sites = {site for _, site, _ in bb.timeline()}
                for site in sorted(killed_sites):
                    last = bb.last_in_flight(site)
                    if last is None:
                        # Killed before its first dispatched rule — the
                        # ring is honest about having seen no match work.
                        continue
                    if last[0] not in rule_names:
                        result.mismatches.append(
                            f"blackbox last in-flight rule for killed site "
                            f"{site} is {last[0]!r}, not a program rule"
                        )
                    elif site not in timeline_sites:
                        result.mismatches.append(
                            f"killed site {site} absent from the merged "
                            f"blackbox timeline"
                        )
    return result


# ---------------------------------------------------------------------------
# Janitor leg: real orphans from a real SIGKILL
# ---------------------------------------------------------------------------


def _columnar_child(conn) -> None:  # pragma: no cover - runs in a child
    from multiprocessing import resource_tracker

    from repro.wm.columnar import ColumnarWorkingMemory

    wm = ColumnarWorkingMemory()
    for i in range(16):
        wm.make("orphan", {"value": i})
    # Simulate the real leak: a hard kill takes the resource tracker's
    # state with it (OOM/group kill), so nothing cleans these up. Without
    # this, the child's tracker would reclaim the segments itself and race
    # the sweep under test.
    for name in wm.segment_names:
        try:
            resource_tracker.unregister(f"/{name}", "shared_memory")
        except Exception:  # noqa: BLE001 - never registered is fine too
            pass
    conn.send(wm.segment_names)
    conn.recv()  # parent never answers: wait here for the SIGKILL


def kill_columnar_child() -> Tuple[Tuple[str, ...], List[str]]:
    """Spawn a child that builds a columnar store, SIGKILL it mid-life,
    and sweep. Returns ``(child's segment names, names the sweep removed)``
    — the janitor assertion is that the former is a subset of the latter."""
    ctx = multiprocessing.get_context(
        "fork" if "fork" in multiprocessing.get_all_start_methods() else "spawn"
    )
    parent_conn, child_conn = ctx.Pipe()
    proc = ctx.Process(target=_columnar_child, args=(child_conn,), daemon=True)
    proc.start()
    child_conn.close()
    names: Tuple[str, ...] = parent_conn.recv()
    os.kill(proc.pid, signal.SIGKILL)
    proc.join()
    parent_conn.close()
    report = sweep_orphans(min_age=0.0)
    return names, list(report.removed)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.resilience.chaos",
        description="seeded chaos differential: crash, corrupt, recover, "
        "compare byte-for-byte against a clean run",
    )
    parser.add_argument("--workload", default="tc", choices=sorted(REGISTRY))
    parser.add_argument("--backend", default="dict", choices=("dict", "columnar"))
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--checkpoint-every", type=int, default=1, metavar="N"
    )
    parser.add_argument(
        "--skip-janitor",
        action="store_true",
        help="skip the SIGKILL-a-child orphan-reclaim leg",
    )
    args = parser.parse_args(argv)

    result = run_chaos(
        workload=args.workload,
        backend=args.backend,
        seed=args.seed,
        checkpoint_every=args.checkpoint_every,
    )
    print(result.summary())
    code = 0 if result.ok else 1

    if not args.skip_janitor:
        names, removed = kill_columnar_child()
        missing = [n for n in names if n not in removed]
        if missing:
            print(f"[chaos] janitor FAILED to reclaim: {missing}")
            code = 1
        else:
            print(
                f"[chaos] janitor reclaimed all {len(names)} orphaned "
                f"segment(s) from the killed child"
            )
        # Nothing of ours may be left behind: a second sweep must be a no-op
        # for dead-owner segments.
        left = [
            n
            for n in sweep_orphans(min_age=0.0, dry_run=True).removed
        ]
        if left:
            print(f"[chaos] segments still leaked after sweep: {left}")
            code = 1
    return code


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
