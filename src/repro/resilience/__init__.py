"""Resilience subsystem: durable checkpoints, supervised degradation, and
live recovery.

Three legs (see ``docs/RESILIENCE.md``):

- :mod:`repro.resilience.checkpoint` — atomic, digest-framed checkpoint
  envelopes; a keep-last-K rotating store with cheap delta checkpoints
  between full snapshots; last-good fallback on corruption.
- :mod:`repro.resilience.supervisor` — the policy side of worker
  supervision for the process match backend: heartbeats, seeded backoff,
  per-site circuit breakers, and the process → threaded → serial
  degradation ladder with cool-down re-promotion.
- :mod:`repro.resilience.janitor` — startup sweep reclaiming orphaned
  ``/dev/shm`` segments left by SIGKILLed columnar-store owners.

The chaos harness lives in :mod:`repro.resilience.chaos`; it imports the
engine, so it is deliberately *not* re-exported here (importing it from
package ``__init__`` would cycle with :mod:`repro.core.engine`, which
lazily imports this package's checkpoint helpers).
"""

from repro.resilience.checkpoint import (
    CheckpointLoad,
    CheckpointStore,
    EngineCheckpointer,
    apply_delta_state,
    is_envelope,
    load_checkpoint_file,
    read_envelope,
    write_envelope,
)
from repro.resilience.janitor import DEFAULT_SHM_DIR, JanitorReport, sweep_orphans
from repro.resilience.supervisor import (
    FULL_LADDER,
    LADDER_RUNGS,
    SiteSupervisor,
    SupervisorDecision,
    SupervisorPolicy,
)

__all__ = [
    "CheckpointLoad",
    "CheckpointStore",
    "EngineCheckpointer",
    "apply_delta_state",
    "is_envelope",
    "load_checkpoint_file",
    "read_envelope",
    "write_envelope",
    "DEFAULT_SHM_DIR",
    "JanitorReport",
    "sweep_orphans",
    "FULL_LADDER",
    "LADDER_RUNGS",
    "SiteSupervisor",
    "SupervisorDecision",
    "SupervisorPolicy",
]
