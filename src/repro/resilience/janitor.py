"""Startup janitor for orphaned shared-memory segments.

The columnar store (:mod:`repro.wm.columnar`) names every POSIX
shared-memory segment ``pwm...`` and the flight recorder
(:mod:`repro.obs.flightrec`) names its event rings ``pfr...`` — both
embed the creating pid the same way, and a default sweep covers both.
Cleanup is layered — ``close()``, a
pid-guarded finalizer, the stdlib ``resource_tracker`` — but a parent that
dies by ``SIGKILL`` executes none of them, stranding named segments in
``/dev/shm`` until the machine reboots (or fills).

This module reclaims such orphans *safely*:

- New-format segment names embed the creating pid
  (``pwm<pid:08x>p<token>...``, see
  :func:`repro.wm.columnar.parse_owner_pid`): a segment is an orphan
  exactly when its owner pid is gone. Pid recycling can only err on the
  side of *keeping* a segment (some unrelated live process wears the pid),
  never of deleting a live one. Unlinking only removes the name — any
  reader that still has the segment mapped keeps its mapping.
- Legacy names (no embedded pid) fall back to a ``/proc/*/maps`` scan
  (the ``fuser`` equivalent, without the binary): the segment is an
  orphan only if no live process has it mapped *and* it is older than
  ``min_age`` seconds (so a store mid-construction is never swept).

``parulel janitor`` runs a sweep from the command line;
``scripts/check.sh`` calls it instead of the old fuser loop, and the chaos
harness (:mod:`repro.resilience.chaos`) runs it after every killed run.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple, Union

from repro.obs.flightrec import FLIGHT_PREFIX
from repro.wm.columnar import SEGMENT_PREFIX, parse_owner_pid

__all__ = [
    "JanitorReport",
    "sweep_orphans",
    "DEFAULT_SHM_DIR",
    "DEFAULT_PREFIXES",
]

DEFAULT_SHM_DIR = "/dev/shm"

#: Segment families a default sweep reclaims: columnar WM columns/journals
#: (``pwm``) and flight-recorder event rings (``pfr``). Both name formats
#: embed the owner pid identically, so one pid-liveness rule covers both.
DEFAULT_PREFIXES: Tuple[str, ...] = (SEGMENT_PREFIX, FLIGHT_PREFIX)

#: Legacy (pid-less) segments younger than this are never swept: the
#: owner may not have mapped them into any scanned process yet.
DEFAULT_MIN_AGE = 1.0


@dataclass
class JanitorReport:
    """One sweep's outcome: names removed, names kept (with the reason)."""

    removed: List[str] = field(default_factory=list)
    kept: List[Tuple[str, str]] = field(default_factory=list)
    dry_run: bool = False

    def __str__(self) -> str:
        verb = "would remove" if self.dry_run else "removed"
        return (
            f"janitor: {verb} {len(self.removed)} orphaned segment(s), "
            f"kept {len(self.kept)}"
        )


def _pid_alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:  # pragma: no cover - pid exists, not ours
        return True
    except OSError:  # pragma: no cover - conservative default
        return True
    return True


def _mapped_anywhere(path: str) -> bool:
    """Whether any live process has ``path`` mapped (scan /proc/*/maps)."""
    try:
        pids = [p for p in os.listdir("/proc") if p.isdigit()]
    except OSError:  # pragma: no cover - no procfs
        return True  # cannot tell: assume in use
    needle = path.encode()
    for pid in pids:
        try:
            with open(f"/proc/{pid}/maps", "rb") as fh:
                if needle in fh.read():
                    return True
        except OSError:
            continue  # process vanished or not ours to inspect
    return False


def sweep_orphans(
    shm_dir: str = DEFAULT_SHM_DIR,
    prefix: Union[str, Sequence[str]] = DEFAULT_PREFIXES,
    min_age: float = DEFAULT_MIN_AGE,
    dry_run: bool = False,
) -> JanitorReport:
    """Reclaim orphaned ``<prefix>*`` segments under ``shm_dir``.

    ``prefix`` is one segment-family prefix or a sequence of them; the
    default sweeps both the columnar store's ``pwm`` and the flight
    recorder's ``pfr`` families. Safe by construction: segments whose
    embedded owner pid is alive are kept; pid-less (legacy) segments are
    kept while mapped by any process or younger than ``min_age`` seconds.
    Everything else is unlinked (reported only, with ``dry_run``).
    """
    prefixes = (prefix,) if isinstance(prefix, str) else tuple(prefix)
    report = JanitorReport(dry_run=dry_run)
    try:
        names = sorted(os.listdir(shm_dir))
    except OSError:
        return report  # no shm dir on this platform: nothing to do
    now = time.time()
    for name in names:
        matched = next((p for p in prefixes if name.startswith(p)), None)
        if matched is None:
            continue
        path = os.path.join(shm_dir, name)
        pid = parse_owner_pid(name, prefix=matched)
        if pid is not None:
            if _pid_alive(pid):
                report.kept.append((name, f"owner pid {pid} is alive"))
                continue
        else:
            try:
                age = now - os.stat(path).st_mtime
            except OSError:
                continue  # vanished under us
            if age < min_age:
                report.kept.append((name, f"only {age:.2f}s old"))
                continue
            if _mapped_anywhere(path):
                report.kept.append((name, "mapped by a live process"))
                continue
        if not dry_run:
            # Plain unlink, no resource_tracker.unregister: the sweeping
            # process never registered these names (the dead owner's
            # tracker did, and died with it), so messaging our own tracker
            # would only spawn one to reject the name.
            try:
                os.unlink(path)
            except FileNotFoundError:
                continue  # swept concurrently
            except OSError as exc:  # pragma: no cover - permissions
                report.kept.append((name, f"unlink failed: {exc}"))
                continue
        report.removed.append(name)
    return report
