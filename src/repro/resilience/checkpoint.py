"""Durable checkpoints: framed envelopes, atomic writes, rotation, deltas.

The engine's checkpoint *state* is a JSON-safe dict
(:meth:`~repro.core.engine.ParulelEngine.checkpoint`); this module owns how
that dict survives on disk.

**Envelope.** Every checkpoint file is framed::

    PARULELCKPT\\n
    {"envelope": 1, "kind": "full"|"delta", "sha256": ..., "length": N}\\n
    <N bytes of compact JSON payload>

The header carries the payload's exact byte length and SHA-256 digest, so
truncation, bit rot and partial writes are all detected *before* the
payload is parsed; any violation raises the typed
:class:`~repro.errors.CheckpointCorruptError` naming the file.

**Atomicity.** :func:`write_envelope` writes to a same-directory temp
file, ``fsync``\\ s it, ``os.replace``\\ s it over the target, and fsyncs
the directory: a ``kill -9`` at any instant leaves either the old
checkpoint or the new one, never a torn file (stray ``*.tmp-*`` files are
ignored by readers and swept by the store's pruning).

**Store.** :class:`CheckpointStore` manages a directory of rotating
checkpoints: ``ckpt-<seq>.full`` snapshots with cheap ``ckpt-<seq>.delta``
increments between them (only the delta-log suffix, new output and new
refraction keys since the previous save — the working memory is *not*
re-serialized). :meth:`CheckpointStore.load` walks backwards to the newest
full snapshot that verifies, replays the good prefix of its deltas, and
reports anything it had to skip — last-good fallback is the default
behaviour, not an error path. Retention keeps the last ``keep`` full
snapshots (and their deltas).

:class:`EngineCheckpointer` is the engine-facing convenience: call
:meth:`~EngineCheckpointer.save` every N cycles (the CLI's
``--checkpoint-every``) and it alternates full snapshots with deltas at
the configured cadence, tracking the engine's checkpoint cursor.
"""

from __future__ import annotations

import hashlib
import json
import os
import re
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.errors import CheckpointCorruptError, ExecutionError

__all__ = [
    "MAGIC",
    "ENVELOPE_VERSION",
    "write_envelope",
    "read_envelope",
    "is_envelope",
    "load_checkpoint_file",
    "apply_delta_state",
    "CheckpointStore",
    "CheckpointLoad",
    "EngineCheckpointer",
]

MAGIC = b"PARULELCKPT\n"
ENVELOPE_VERSION = 1

_ENTRY_RE = re.compile(r"^ckpt-(\d{8})\.(full|delta)$")
_TMP_MARK = ".tmp-"


# -- framed envelope ----------------------------------------------------------


def write_envelope(path: str, payload: Dict[str, Any], kind: str = "full") -> None:
    """Durably write one framed checkpoint file (atomic tmp+fsync+rename)."""
    if kind not in ("full", "delta"):
        raise ValueError(f"envelope kind must be 'full' or 'delta', not {kind!r}")
    body = json.dumps(payload, separators=(",", ":")).encode("utf-8")
    header = json.dumps(
        {
            "envelope": ENVELOPE_VERSION,
            "kind": kind,
            "sha256": hashlib.sha256(body).hexdigest(),
            "length": len(body),
        },
        separators=(",", ":"),
    ).encode("utf-8")
    tmp = f"{path}{_TMP_MARK}{os.getpid()}"
    with open(tmp, "wb") as fh:
        fh.write(MAGIC)
        fh.write(header)
        fh.write(b"\n")
        fh.write(body)
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, path)
    _fsync_dir(os.path.dirname(os.path.abspath(path)))


def _fsync_dir(dirname: str) -> None:
    """Make the rename itself durable (the file's fsync does not cover the
    directory entry)."""
    try:
        fd = os.open(dirname, os.O_RDONLY)
    except OSError:  # pragma: no cover - exotic filesystems
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover - directories not fsyncable here
        pass
    finally:
        os.close(fd)


def is_envelope(path: str) -> bool:
    """Whether the file starts with the checkpoint magic (vs legacy JSON)."""
    try:
        with open(path, "rb") as fh:
            return fh.read(len(MAGIC)) == MAGIC
    except OSError:
        return False


def read_envelope(path: str) -> Tuple[str, Dict[str, Any]]:
    """Verify and parse one framed checkpoint file.

    Returns ``(kind, payload)``; raises
    :class:`~repro.errors.CheckpointCorruptError` on *any* integrity
    violation — bad magic, unreadable header, truncated payload, trailing
    garbage, digest mismatch, or a payload that is not valid JSON.
    """
    with open(path, "rb") as fh:
        if fh.read(len(MAGIC)) != MAGIC:
            raise CheckpointCorruptError(path, "bad magic (not a framed checkpoint)")
        header_line = fh.readline(4096)
        try:
            header = json.loads(header_line)
            kind = header["kind"]
            digest = header["sha256"]
            length = header["length"]
            envelope = header["envelope"]
        except (ValueError, KeyError, TypeError) as exc:
            raise CheckpointCorruptError(path, f"unreadable header: {exc}") from exc
        if envelope != ENVELOPE_VERSION:
            raise CheckpointCorruptError(
                path, f"envelope version {envelope!r} (expected {ENVELOPE_VERSION})"
            )
        if not isinstance(length, int) or length < 0:
            raise CheckpointCorruptError(path, f"bad payload length {length!r}")
        body = fh.read(length)
        if len(body) != length:
            raise CheckpointCorruptError(
                path, f"truncated payload ({len(body)} of {length} bytes)"
            )
        if fh.read(1):
            raise CheckpointCorruptError(path, "trailing bytes after payload")
    if hashlib.sha256(body).hexdigest() != digest:
        raise CheckpointCorruptError(path, "SHA-256 digest mismatch")
    try:
        payload = json.loads(body)
    except ValueError as exc:
        raise CheckpointCorruptError(path, f"payload is not valid JSON: {exc}") from exc
    if not isinstance(payload, dict):
        raise CheckpointCorruptError(path, "payload is not a JSON object")
    return kind, payload


def load_checkpoint_file(path: str) -> Dict[str, Any]:
    """Load a restorable full state from ``path``: a framed checkpoint
    file, a legacy raw-JSON checkpoint, or a :class:`CheckpointStore`
    directory (last-good fallback applies). Raises
    :class:`~repro.errors.CheckpointCorruptError` (an
    :class:`~repro.errors.ExecutionError`) naming the path on any failure
    other than the file simply not existing."""
    if os.path.isdir(path):
        return CheckpointStore(path).load().state
    if is_envelope(path):
        kind, payload = read_envelope(path)
        if kind != "full":
            raise CheckpointCorruptError(
                path,
                "a bare delta checkpoint cannot be restored without its "
                "base snapshot (resume from the store directory instead)",
            )
        return payload
    # Legacy unframed JSON checkpoint (pre-envelope writers).
    try:
        with open(path, "r", encoding="utf-8") as fh:
            state = json.load(fh)
    except ValueError as exc:
        raise CheckpointCorruptError(path, f"not valid JSON: {exc}") from exc
    if not isinstance(state, dict):
        raise CheckpointCorruptError(path, "checkpoint is not a JSON object")
    return state


# -- delta application ---------------------------------------------------------


def apply_delta_state(state: Dict[str, Any], delta: Dict[str, Any]) -> Dict[str, Any]:
    """Apply one incremental checkpoint onto a full state dict, in place.

    The delta's ``base_cycle`` must equal the state's current cycle —
    deltas chain from the immediately preceding save, so a gap means the
    chain is unusable (the store treats that as corruption and falls
    back). Working-memory records are edited by replaying the delta's
    delta-log entries; everything else appends.
    """
    base = delta.get("base_cycle")
    if base != state.get("cycle"):
        raise ExecutionError(
            f"delta checkpoint base cycle {base!r} does not match "
            f"state cycle {state.get('cycle')!r}"
        )
    records: Dict[int, list] = {rec[2]: rec for rec in state["wm"]["records"]}
    for removed, made in delta["delta_log"]:
        for ts in removed:
            if ts not in records:
                raise ExecutionError(
                    f"delta checkpoint removes unknown timestamp {ts}"
                )
            del records[ts]
        for rec in made:
            records[rec[2]] = list(rec)
    state["wm"]["records"] = [records[ts] for ts in sorted(records)]
    state["wm"]["next_timestamp"] = delta["next_timestamp"]
    state["cycle"] = delta["cycle"]
    state["halted"] = delta["halted"]
    state["redaction_quiescent"] = delta["redaction_quiescent"]
    state["fired"] = list(state["fired"]) + list(delta["fired"])
    state["output"] = list(state["output"]) + list(delta["output"])
    state["delta_log"] = list(state["delta_log"]) + list(delta["delta_log"])
    return state


# -- rotating store -------------------------------------------------------------


@dataclass
class CheckpointLoad:
    """Result of :meth:`CheckpointStore.load`: the reconstructed full
    state, the snapshot it came from, the deltas applied on top, and the
    corrupt/unusable files that were skipped (``(path, reason)``)."""

    state: Dict[str, Any]
    base_path: str
    delta_paths: List[str] = field(default_factory=list)
    skipped: List[Tuple[str, str]] = field(default_factory=list)

    @property
    def fell_back(self) -> bool:
        """Whether anything newer than the loaded chain was skipped."""
        return bool(self.skipped)


class CheckpointStore:
    """A directory of rotating, integrity-checked checkpoints."""

    def __init__(self, root: str, keep: int = 3) -> None:
        if keep < 1:
            raise ValueError("keep must be >= 1 full snapshot")
        self.root = root
        self.keep = keep
        os.makedirs(root, exist_ok=True)
        self._seq = max((seq for seq, _kind, _p in self._entries()), default=0)

    def _entries(self) -> List[Tuple[int, str, str]]:
        """Sorted ``(seq, kind, path)`` for every checkpoint file present."""
        out = []
        for name in os.listdir(self.root):
            m = _ENTRY_RE.match(name)
            if m:
                out.append((int(m.group(1)), m.group(2), os.path.join(self.root, name)))
        out.sort()
        return out

    def _next_path(self, kind: str) -> str:
        self._seq += 1
        return os.path.join(self.root, f"ckpt-{self._seq:08d}.{kind}")

    # -- writing ---------------------------------------------------------------

    def save_full(self, state: Dict[str, Any]) -> str:
        """Write one full snapshot; prune past the retention window."""
        path = self._next_path("full")
        write_envelope(path, state, kind="full")
        self.prune()
        return path

    def save_delta(self, delta: Dict[str, Any]) -> str:
        """Write one incremental checkpoint (requires a preceding full)."""
        if not any(kind == "full" for _s, kind, _p in self._entries()):
            raise ExecutionError(
                "cannot write a delta checkpoint before any full snapshot"
            )
        path = self._next_path("delta")
        write_envelope(path, delta, kind="delta")
        return path

    def prune(self) -> List[str]:
        """Keep the last ``keep`` full snapshots and everything after the
        oldest kept one; drop older files and stale temp files. Returns
        the removed paths."""
        entries = self._entries()
        full_seqs = [seq for seq, kind, _p in entries if kind == "full"]
        removed = []
        if len(full_seqs) > self.keep:
            floor = full_seqs[-self.keep]
            for seq, _kind, path in entries:
                if seq < floor:
                    try:
                        os.unlink(path)
                        removed.append(path)
                    except OSError:  # pragma: no cover - concurrent sweep
                        pass
        for name in os.listdir(self.root):
            if _TMP_MARK in name:
                path = os.path.join(self.root, name)
                try:
                    os.unlink(path)
                    removed.append(path)
                except OSError:  # pragma: no cover - concurrent sweep
                    pass
        return removed

    # -- reading ---------------------------------------------------------------

    def load(self) -> CheckpointLoad:
        """Reconstruct the newest restorable state (last-good fallback).

        Walks full snapshots newest-first; for the first one that
        verifies, applies the contiguous good prefix of the deltas written
        after it (and before the next full — deltas chain from their
        immediately preceding save, so a corrupt link ends the chain).
        Raises :class:`~repro.errors.CheckpointCorruptError` only when *no*
        full snapshot in the store verifies.
        """
        entries = self._entries()
        fulls = [(seq, path) for seq, kind, path in entries if kind == "full"]
        if not fulls:
            raise CheckpointCorruptError(
                self.root, "store contains no full checkpoint snapshot"
            )
        skipped: List[Tuple[str, str]] = []
        next_full_seq: Optional[int] = None
        for full_seq, full_path in reversed(fulls):
            try:
                kind, state = read_envelope(full_path)
                if kind != "full":
                    raise CheckpointCorruptError(
                        full_path, f"mis-labelled snapshot (kind {kind!r})"
                    )
            except CheckpointCorruptError as exc:
                skipped.append((full_path, exc.reason))
                next_full_seq = full_seq
                continue
            load = CheckpointLoad(state=state, base_path=full_path, skipped=skipped)
            deltas = [
                (seq, path)
                for seq, kind, path in entries
                if kind == "delta"
                and seq > full_seq
                and (next_full_seq is None or seq < next_full_seq)
            ]
            for _seq, delta_path in deltas:
                try:
                    kind, delta = read_envelope(delta_path)
                    if kind != "delta":
                        raise CheckpointCorruptError(
                            delta_path, f"mis-labelled delta (kind {kind!r})"
                        )
                    apply_delta_state(state, delta)
                except (CheckpointCorruptError, ExecutionError) as exc:
                    reason = getattr(exc, "reason", str(exc))
                    skipped.append((delta_path, reason))
                    break  # later deltas chain off this one: unusable
                load.delta_paths.append(delta_path)
            return load
        raise CheckpointCorruptError(
            self.root,
            "no full snapshot verified: "
            + "; ".join(f"{os.path.basename(p)}: {r}" for p, r in skipped),
        )


# -- engine-facing cadence -------------------------------------------------------


class EngineCheckpointer:
    """Alternate full snapshots with cheap deltas at a fixed cadence.

    ``full_every=K`` writes one full snapshot, then ``K-1`` deltas, then
    another full, and so on (``1`` = every save is a full snapshot). The
    first save is always full; :meth:`save` is what the CLI's
    ``--checkpoint-every`` callback invokes.
    """

    def __init__(self, engine, store: CheckpointStore, full_every: int = 5) -> None:
        if full_every < 1:
            raise ValueError("full_every must be >= 1")
        self.engine = engine
        self.store = store
        self.full_every = full_every
        self._cursor = None
        self._deltas_since_full = 0

    def save(self) -> str:
        """Write the next checkpoint (full or delta per the cadence)."""
        if self._cursor is None or self._deltas_since_full >= self.full_every - 1:
            state = self.engine.checkpoint()
            path = self.store.save_full(state)
            self._cursor = self.engine.checkpoint_cursor()
            self._deltas_since_full = 0
        else:
            delta, self._cursor = self.engine.checkpoint_delta(self._cursor)
            path = self.store.save_delta(delta)
            self._deltas_since_full += 1
        return path
