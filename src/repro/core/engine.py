"""The PARULEL engine: set-oriented parallel rule firing.

Each cycle of :meth:`ParulelEngine.step`:

1. **Collect** — take the incremental matcher's conflict set, drop
   refracted instantiations (an instantiation — rule + exact WME
   timestamps — fires at most once);
2. **Redact** — run the meta-program over the reified candidates
   (:class:`~repro.core.redaction.MetaLevel`); the survivors form the
   *firing set*;
3. **Evaluate** — run every survivor's RHS against the pre-firing snapshot
   (:class:`~repro.core.actions.ActionEvaluator`); nothing is applied yet,
   so firings cannot observe each other — the defining property of
   PARULEL's parallel semantics;
4. **Apply** — merge the per-firing deltas under the configured
   interference policy (:func:`~repro.core.delta.merge_deltas`) and commit
   the result atomically; the incremental matchers update as the WMEs flow.

The run ends at *quiescence* (no unrefracted instantiations), at
*redaction quiescence* (every candidate redacted — since the engine is
deterministic and working memory did not change, the next cycle would repeat
forever), on ``(halt)``, or at the cycle limit.

Redacted instantiations are **not** refracted: a meta-rule that defers a
firing (e.g. "the larger region wins this cycle") lets it fire in a later
cycle if it is still matched — deferral, not deletion, matching the
published description of PARULEL's meta level.
"""

from __future__ import annotations

import time
from collections import Counter
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Set, Tuple

from repro.errors import CommuteViolationError, CycleLimitExceeded, ExecutionError
from repro.core.actions import ActionEvaluator, HostFunction, InstantiationDelta
from repro.core.delta import CycleDelta, InterferencePolicy, merge_deltas
from repro.core.provenance import ProvenanceTracker
from repro.core.redaction import MetaLevel, RedactionReport
from repro.faults import FaultEvent, FaultPlan
from repro.lang.analysis import analyze_program
from repro.lang.ast import Program, Value
from repro.match.instantiation import InstKey, Instantiation
from repro.match.interface import Matcher, create_matcher
from repro.metrics.timers import PhaseTimer
from repro.obs.metrics import NULL_METRICS
from repro.obs.profile import (
    MATCH_OPS,
    REDACTION_SKIPPED,
    RULE_CANDIDATES,
    RULE_EVAL_SECONDS,
    RULE_FIRINGS,
    RULE_REDACTIONS,
    SANITIZER_REPLAYS,
)
from repro.obs.trace import NULL_TRACER, PhaseSpan
from repro.wm.memory import WorkingMemory
from repro.wm.template import TemplateRegistry
from repro.wm.wme import WME

__all__ = ["ParulelEngine", "EngineConfig", "CycleReport", "RunResult"]

#: Checkpoint format version (bumped on incompatible layout changes).
CHECKPOINT_VERSION = 1


@dataclass(frozen=True)
class EngineConfig:
    """Knobs of the PARULEL engine.

    ``matcher`` / ``meta_matcher`` name the match engines (``rete``,
    ``treat``, ``naive``). ``interference`` picks the
    :class:`~repro.core.delta.InterferencePolicy`. ``dedupe_makes``
    collapses identical makes within one cycle (set-insertion reading).
    """

    matcher: str = "rete"
    meta_matcher: str = "rete"
    #: Hash-indexed join kernel (indexed alpha memories + join planning)
    #: for the enumerator-based matchers; ``False`` is the ``--no-index``
    #: nested-loop escape hatch. Semantics are identical either way.
    indexed_match: bool = True
    #: Vectorized column-scan probe kernel for ``process`` workers over a
    #: columnar store (probes evaluated on packed shared-memory columns,
    #: WMEs materialized lazily); ``False`` is the ``--no-vector-probe``
    #: escape hatch back to the object-replica path. Semantics are
    #: identical either way; ignored outside process+columnar.
    vector_probe: bool = True
    interference: InterferencePolicy = InterferencePolicy.ERROR
    dedupe_makes: bool = True
    max_cycles: int = 100_000
    max_meta_cycles: int = 1000
    #: Record a :class:`~repro.core.provenance.Derivation` for every WME,
    #: enabling ``engine.explain(wme)``. Off by default (memory cost).
    track_provenance: bool = False
    #: Process-backend knobs (``matcher="process"`` only): per-worker reply
    #: deadline in seconds, per-site respawn budget before graceful
    #: degradation, and an injected :class:`~repro.faults.FaultPlan`.
    matcher_timeout: Optional[float] = None
    respawn_limit: Optional[int] = None
    fault_plan: Optional[FaultPlan] = None
    #: Supervision policy for the process backend
    #: (:class:`~repro.resilience.supervisor.SupervisorPolicy`): heartbeat
    #: probes, seeded respawn backoff, per-site circuit breaker, and the
    #: process → threaded → serial degradation ladder with re-promotion.
    #: ``None`` keeps the legacy behaviour (immediate respawns, permanent
    #: degradation straight to in-parent serial).
    supervisor: Optional[object] = None
    #: Rule-to-worker assignment policy for the process backend:
    #: ``"round-robin"`` (default), ``"analysis"`` (the static analyzer's
    #: connectivity-minimizing partition), or a concrete
    #: :class:`~repro.parallel.partition.Assignment`.
    assignment: Optional[object] = None
    #: Working-memory store: ``"dict"`` (the default in-process store) or
    #: ``"columnar"`` (:class:`~repro.wm.columnar.ColumnarWorkingMemory`,
    #: shared-memory columns the process backend attaches instead of
    #: receiving pickled deltas). Semantics are identical either way.
    wm_backend: str = "dict"
    #: Certified redaction fast path: skip reifying conflict-set candidates
    #: whose rules the commute analysis proved invisible to every meta-rule
    #: and commuting (statically or by concrete pair replay) with every
    #: other candidate. Results are byte-identical; the skipped work is
    #: reported via ``parulel_redaction_skipped_total``.
    certified_commute: bool = False
    #: Runtime race sanitizer: after evaluating each cycle's firing set,
    #: replay every fired pair in both orders on a shadow of the deltas and
    #: raise :class:`~repro.errors.CommuteViolationError` if a pair the
    #: analysis certified as COMMUTES diverges. A dynamic cross-check of
    #: the static verdicts; replays are counted via
    #: ``parulel_sanitizer_replays_total``.
    sanitize_races: bool = False
    #: Always-on black-box flight recorder (:mod:`repro.obs.flightrec`):
    #: bounded shared-memory event rings written by the engine and every
    #: match worker, dumped to a ``*.blackbox`` post-mortem file on any
    #: abnormal exit. ``False`` is the ``--no-flight-recorder`` escape
    #: hatch; the measured overhead budget on tc is 5% (``check.sh --obs``).
    flight_recorder: bool = True
    #: Where crash dumps land; ``None`` means a pid-keyed file under the
    #: temp dir (:func:`repro.obs.flightrec.default_blackbox_path`).
    blackbox_path: Optional[str] = None
    #: Ring capacity in records (per ring — the engine's and each worker's).
    flight_capacity: int = 4096

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "interference", InterferencePolicy.of(self.interference)
        )
        if self.matcher_timeout is not None and self.matcher_timeout <= 0:
            raise ValueError("matcher_timeout must be > 0 seconds")
        if self.respawn_limit is not None and self.respawn_limit < 0:
            raise ValueError("respawn_limit must be >= 0 (None for unlimited)")
        if self.wm_backend not in ("dict", "columnar"):
            raise ValueError(
                f"unknown wm_backend {self.wm_backend!r} "
                f"(expected 'dict' or 'columnar')"
            )
        if self.certified_commute and not self.dedupe_makes:
            raise ValueError(
                "certified_commute requires dedupe_makes=True (the pair "
                "replays mirror the set-insertion merge)"
            )
        if self.flight_capacity < 16:
            raise ValueError("flight_capacity must be >= 16 records")


def _build_wm(config: "EngineConfig", program: Program) -> WorkingMemory:
    """The working-memory store the config asks for. Imported lazily so the
    default dict path never touches :mod:`multiprocessing.shared_memory`."""
    templates = TemplateRegistry.from_program(program)
    if config.wm_backend == "columnar":
        from repro.wm.columnar import ColumnarWorkingMemory

        return ColumnarWorkingMemory(templates)
    return WorkingMemory(templates)


@dataclass
class CycleReport:
    """Everything one cycle did — the unit of engine instrumentation."""

    cycle: int
    conflict_set_size: int
    candidates: int
    redaction: RedactionReport
    fired: int
    delta_removes: int
    delta_makes: int
    conflicts_resolved: int
    makes_deduped: int
    #: Every ``(write ...)`` line the cycle emitted — meta-level writes
    #: first (redaction phase), then the merged object-level writes.
    writes: List[str] = field(default_factory=list)
    halted: bool = False
    #: Fault/recovery events the match backend reported this cycle
    #: (worker respawns, degradations, injected kills/wedges).
    fault_events: List[FaultEvent] = field(default_factory=list)


@dataclass
class RunResult:
    """Summary of one :meth:`ParulelEngine.run` call.

    All fields — including ``output`` — cover only this call: repeated
    ``run()`` calls on one engine each report their own slice, while the
    engine's ``output``/``reports`` attributes stay cumulative.
    """

    cycles: int
    firings: int
    reason: str  # 'quiescence' | 'redaction-quiescence' | 'halt' | 'cycle-limit'
    output: List[str]
    reports: List[CycleReport]
    wall_time: float
    phase_times: Counter

    @property
    def halted(self) -> bool:
        return self.reason == "halt"

    @property
    def firing_set_sizes(self) -> List[int]:
        return [r.fired for r in self.reports]

    @property
    def mean_firing_set(self) -> float:
        sizes = [s for s in self.firing_set_sizes if s]
        return sum(sizes) / len(sizes) if sizes else 0.0


class ParulelEngine:
    """The set-oriented, meta-rule-redacting production-system engine."""

    def __init__(
        self,
        program: Program,
        config: Optional[EngineConfig] = None,
        host_functions: Optional[Mapping[str, HostFunction]] = None,
        wm: Optional[WorkingMemory] = None,
        trace: Optional[Callable[[CycleReport], None]] = None,
        tracer=None,
        metrics=None,
    ) -> None:
        analyze_program(program)
        self.program = program
        self.config = config or EngineConfig()
        #: Observability hooks (:mod:`repro.obs`). Both default to the
        #: shared no-op singletons; hot paths guard on ``.enabled`` so a
        #: disabled engine does no observability work at all.
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.metrics = metrics if metrics is not None else NULL_METRICS
        self.wm = wm if wm is not None else _build_wm(self.config, program)
        self.evaluator = ActionEvaluator(host_functions)
        matcher_options: Dict[str, Any] = {}
        if self.config.matcher_timeout is not None:
            matcher_options["timeout"] = self.config.matcher_timeout
        if self.config.respawn_limit is not None:
            matcher_options["respawn_limit"] = self.config.respawn_limit
        if self.config.fault_plan is not None:
            matcher_options["fault_plan"] = self.config.fault_plan
        if self.config.supervisor is not None:
            matcher_options["supervisor"] = self.config.supervisor
        if self.config.assignment is not None:
            matcher_options["assignment"] = self.config.assignment
        if self.tracer.enabled or self.metrics.enabled:
            matcher_options["tracer"] = self.tracer
            matcher_options["metrics"] = self.metrics
        #: The always-on black-box flight recorder (None only with
        #: ``flight_recorder=False``). Imported lazily: it is the one
        #: default-on feature that touches multiprocessing.shared_memory.
        self.flightrec = None
        self._fr = None  # the flightrec module (event-kind constants)
        self._replay_count = 0
        if self.config.flight_recorder:
            from repro.obs import flightrec as _fr

            self._fr = _fr
            self.flightrec = _fr.FlightRecorder(
                [r.name for r in program.rules],
                capacity=self.config.flight_capacity,
            )
            matcher_options["flightrec"] = self.flightrec
        self.matcher: Matcher = create_matcher(
            self.config.matcher,
            program.rules,
            self.wm,
            indexed=self.config.indexed_match,
            vector_probe=self.config.vector_probe,
            **matcher_options,
        )
        self.meta = MetaLevel(
            program.meta_rules,
            self.wm,
            self.evaluator,
            matcher_name=self.config.meta_matcher,
            max_meta_cycles=self.config.max_meta_cycles,
            indexed=self.config.indexed_match,
        )
        self.trace = trace
        self.provenance: Optional[ProvenanceTracker] = (
            ProvenanceTracker() if self.config.track_provenance else None
        )
        #: Commute-analysis runtime state (built only when a flag asks for
        #: it — the analysis package is never imported otherwise).
        self._commute_index = None
        self._pair_replayer = None
        #: Survivor-key pairs concretely certified during the current
        #: cycle's redact phase (the sanitizer treats them like static
        #: COMMUTES verdicts).
        self._certified_pairs: Set[frozenset] = set()
        if self.config.certified_commute or self.config.sanitize_races:
            from repro.analysis.commute import CommuteIndex
            from repro.core.sanitize import PairReplayer

            self._commute_index = CommuteIndex(program)
            self._pair_replayer = PairReplayer(
                dedupe_makes=self.config.dedupe_makes,
                on_replay=(
                    self._note_replay if self.flightrec is not None else None
                ),
            )
        #: Last-seen matcher op totals, for per-cycle MATCH_OPS deltas.
        self._last_match_ops: Counter = Counter()
        self.fired: Set[InstKey] = set()
        #: Append-only mirror of :attr:`fired` in firing order, so
        #: incremental checkpoints (:meth:`checkpoint_delta`) can slice
        #: "keys fired since the cursor" without diffing sets.
        self._fired_log: List[InstKey] = []
        self.output: List[str] = []
        self.reports: List[CycleReport] = []
        #: Thread-safe per-phase wall-clock accumulator; the engine's named
        #: spans are backed by it, and ``phase_times`` is a live view of
        #: its seconds counter (the historical public shape).
        self.timer = PhaseTimer()
        self.phase_times: Counter = self.timer.seconds
        #: All fault/recovery events surfaced by the match backend,
        #: cumulative across the engine's life (per-cycle slices land on
        #: each :class:`CycleReport`).
        self.fault_events: List[FaultEvent] = []
        #: Per-cycle applied deltas in wire form
        #: ``(removed timestamps, ((class, attrs, timestamp), ...))`` —
        #: the audit trail checkpoints carry and replicas replay.
        self.delta_log: List[Tuple[Tuple[int, ...], Tuple[Tuple[str, Dict[str, Value], int], ...]]] = []
        self.halted = False
        self._cycle = 0
        self._redaction_quiescent = False

    # -- working-memory convenience ------------------------------------------

    def make(self, class_name: str, attrs: Optional[Mapping[str, Value]] = None, **kw: Value) -> WME:
        """Assert an initial/extra WME (outside the firing cycle)."""
        wme = self.wm.make(class_name, attrs, **kw)
        if self.provenance is not None:
            self.provenance.record_initial(wme)
        return wme

    def remove(self, wme: WME) -> None:
        self.wm.remove(wme)

    def register_function(self, name: str, fn: HostFunction) -> None:
        """Expose a host callback to ``(call name ...)`` actions."""
        self.evaluator.register(name, fn)

    # -- the cycle ----------------------------------------------------------------

    def step(self) -> Optional[CycleReport]:
        """Run one recognize-redact-act cycle.

        Returns ``None`` when the system is quiescent (nothing unrefracted
        to fire) — including redaction quiescence, where candidates exist
        but the meta level vetoes all of them and working memory cannot
        change.

        Any exception escaping the cycle (interference, a commute
        violation, checkpoint corruption in a trace callback, ...) first
        triggers a black-box dump, then propagates unchanged.
        """
        try:
            return self._step()
        except Exception as exc:
            self._dump_blackbox(f"{type(exc).__name__}: {exc}")
            raise

    def _step(self) -> Optional[CycleReport]:
        if self.halted or self._redaction_quiescent:
            return None
        tracer, metrics = self.tracer, self.metrics
        flightrec = self.flightrec
        cycle_no = self._cycle + 1

        with self._phase("match", "collect", cycle=cycle_no):
            all_insts = self.matcher.instantiations()
            candidates = [i for i in all_insts if i.key not in self.fired]
        # The match phase is where backend faults surface (worker kills,
        # respawns, degradations); drain them now so the report for this
        # cycle carries them even if nothing fires. The backends record
        # their own trace instants/metrics at injection time.
        cycle_faults = self._drain_matcher_faults()
        if flightrec is not None:
            flightrec.record(
                self._fr.EV_CHURN, cycle_no, a=len(all_insts), b=len(candidates)
            )
            # A worker died (or was declared dead) this cycle: the engine
            # survives by respawn/degradation, but the post-mortem evidence
            # is freshest *now* — dump before the ring slides past it.
            if cycle_faults and any(
                e.kind in self._fr.DEATH_KINDS for e in cycle_faults
            ):
                kinds = ",".join(sorted({e.kind for e in cycle_faults}))
                self._dump_blackbox(f"worker fault: {kinds}")
        if not candidates:
            return None

        with self._phase("redact", "redact", cycle=cycle_no, candidates=len(candidates)):
            self._certified_pairs = set()
            skip = (
                self._certified_skip(candidates)
                if self.config.certified_commute
                else frozenset()
            )
            survivors, red_report = self.meta.redact(candidates, skip_reify=skip)
        if flightrec is not None:
            flightrec.record(
                self._fr.EV_REDACT,
                cycle_no,
                a=len(candidates),
                b=red_report.redacted,
            )
        meta_writes = list(self.meta.writes)
        self.output.extend(meta_writes)

        self._cycle += 1
        if metrics.enabled:
            self._count_cycle(candidates, survivors, red_report)
        if not survivors:
            # Deterministic engine + unchanged WM ⇒ the next cycle would be
            # identical. Record the cycle and stop.
            self._redaction_quiescent = True
            return self._emit(
                CycleReport(
                    cycle=self._cycle,
                    conflict_set_size=len(all_insts),
                    candidates=len(candidates),
                    redaction=red_report,
                    fired=0,
                    delta_removes=0,
                    delta_makes=0,
                    conflicts_resolved=0,
                    makes_deduped=0,
                    writes=meta_writes,
                    halted=self.meta.halt_requested,
                    fault_events=cycle_faults,
                )
            )

        # Evaluate every survivor against the pre-firing snapshot.
        deltas: List[InstantiationDelta] = []
        with self._phase("act", "evaluate", cycle=cycle_no, firing_set=len(survivors)):
            if metrics.enabled or flightrec is not None:
                fire_kind = self._fr.EV_FIRE if flightrec is not None else 0
                for inst in survivors:
                    self.fired.add(inst.key)
                    self._fired_log.append(inst.key)
                    t0 = time.perf_counter_ns()
                    deltas.append(self.evaluator.evaluate(inst))
                    dt_ns = time.perf_counter_ns() - t0
                    if metrics.enabled:
                        metrics.observe(
                            RULE_EVAL_SECONDS, dt_ns / 1e9, rule=inst.rule.name
                        )
                    if flightrec is not None:
                        flightrec.record(
                            fire_kind,
                            cycle_no,
                            code=flightrec.rule_id(inst.rule.name),
                            a=dt_ns,
                        )
            else:
                for inst in survivors:
                    self.fired.add(inst.key)
                    self._fired_log.append(inst.key)
                    deltas.append(self.evaluator.evaluate(inst))

        if self.config.sanitize_races and len(deltas) > 1:
            self._sanitize_races(deltas)

        with self._phase("merge", "apply", cycle=cycle_no, deltas=len(deltas)):
            merged = merge_deltas(
                deltas,
                policy=self.config.interference,
                dedupe_makes=self.config.dedupe_makes,
            )
            self._apply(merged, deltas)

        if metrics.enabled:
            metrics.inc("parulel_firings_total", len(survivors))
            metrics.inc("parulel_delta_removes_total", len(merged.removes))
            metrics.inc("parulel_delta_makes_total", len(merged.makes))
            metrics.inc("parulel_conflicts_resolved_total", merged.conflicts_resolved)
            metrics.set_gauge("parulel_wm_size", len(self.wm))

        halted = merged.halt or self.meta.halt_requested
        self.output.extend(merged.writes)
        return self._emit(
            CycleReport(
                cycle=self._cycle,
                conflict_set_size=len(all_insts),
                candidates=len(candidates),
                redaction=red_report,
                fired=len(survivors),
                delta_removes=len(merged.removes),
                delta_makes=len(merged.makes),
                conflicts_resolved=merged.conflicts_resolved,
                makes_deduped=merged.makes_deduped,
                writes=meta_writes + list(merged.writes),
                halted=halted,
                fault_events=cycle_faults,
            )
        )

    def _phase(self, span_name: str, phase_key: str, **args: Any) -> PhaseSpan:
        """One cycle phase: a named span (paper vocabulary — match /
        redact / act / merge) whose single measurement also feeds
        ``phase_times`` (historical keys — collect / redact / evaluate /
        apply), the phase-seconds histogram, and — when the flight
        recorder is on — an ``EV_PHASE`` ring record."""
        return PhaseSpan(
            self.timer,
            self.tracer,
            self.metrics,
            span_name,
            phase_key,
            flightrec=self.flightrec,
            flight_cycle=args.get("cycle", 0),
            flight_code=(
                self._fr.PHASE_CODES.get(span_name, 0)
                if self.flightrec is not None
                else 0
            ),
            **args,
        )

    def _emit(self, report: CycleReport) -> CycleReport:
        """The ONLY path a :class:`CycleReport` leaves the engine by:
        records it, applies its halt flag, and invokes the trace callback
        exactly once — whatever branch of the cycle produced it."""
        flightrec = self.flightrec
        if flightrec is not None:
            if self._replay_count:
                flightrec.record(
                    self._fr.EV_REPLAY, report.cycle, a=self._replay_count
                )
                self._replay_count = 0
            flightrec.record(
                self._fr.EV_CYCLE,
                report.cycle,
                a=report.fired,
                b=report.conflict_set_size,
            )
            if report.halted:
                flightrec.record(self._fr.EV_HALT, report.cycle)
        self.reports.append(report)
        if report.halted:
            self.halted = True
        if self.trace is not None:
            self.trace(report)
        return report

    def _count_cycle(
        self,
        candidates: Sequence[Instantiation],
        survivors: Sequence[Instantiation],
        red_report: RedactionReport,
    ) -> None:
        """Per-cycle metric counts (called only when metrics are enabled).

        Per-rule redaction counts come from the candidate/survivor
        difference — redaction is the only reducer between the two sets.
        """
        metrics = self.metrics
        metrics.inc("parulel_cycles_total")
        metrics.inc("parulel_candidates_total", len(candidates))
        metrics.inc("parulel_redacted_total", red_report.redacted)
        metrics.inc("parulel_meta_cycles_total", red_report.meta_cycles)
        metrics.inc("parulel_meta_firings_total", red_report.meta_firings)
        if red_report.skipped:
            metrics.inc(REDACTION_SKIPPED, red_report.skipped)
        cand_by_rule = Counter(i.rule.name for i in candidates)
        surv_by_rule = Counter(i.rule.name for i in survivors)
        for rule, n in cand_by_rule.items():
            metrics.inc(RULE_CANDIDATES, n, rule=rule)
            fired = surv_by_rule.get(rule, 0)
            if fired:
                metrics.inc(RULE_FIRINGS, fired, rule=rule)
            if n - fired:
                metrics.inc(RULE_REDACTIONS, n - fired, rule=rule)
        stats = getattr(self.matcher, "stats", None)
        if stats is not None:
            snap = stats.snapshot()
            for op, total in snap.items():
                delta = total - self._last_match_ops.get(op, 0)
                if delta:
                    metrics.inc(MATCH_OPS, delta, op=op)
            self._last_match_ops = snap

    def _certified_skip(self, candidates: Sequence[Instantiation]) -> frozenset:
        """1-based ids of candidates whose reification is provably skippable.

        A candidate may skip the meta level iff (1) its rule is *invisible*
        — no ``instantiation`` CE of any meta-rule can match its
        reification, so skipping cannot change any meta match — and (2) it
        commutes with every other candidate, statically (the commute
        analysis proved the rule pair COMMUTES) or concretely (replaying
        the two purely-evaluated deltas in both orders nets the same WM
        effect), so no arbitration between them can matter.
        """
        from repro.core.sanitize import evaluate_delta_pure

        index, replayer = self._commute_index, self._pair_replayer
        assert index is not None and replayer is not None
        n = len(candidates)
        eligible = [
            i for i in range(n) if index.invisible(candidates[i].rule.name)
        ]
        if not eligible:
            return frozenset()

        deltas: Dict[int, Optional[InstantiationDelta]] = {}

        def delta(i: int) -> Optional[InstantiationDelta]:
            if i not in deltas:
                deltas[i] = evaluate_delta_pure(candidates[i])
            return deltas[i]

        pair_cache: Dict[Tuple[int, int], bool] = {}

        def commutes(i: int, j: int) -> bool:
            key = (i, j) if i < j else (j, i)
            got = pair_cache.get(key)
            if got is None:
                a, b = candidates[key[0]], candidates[key[1]]
                if index.statically_commutes(a.rule.name, b.rule.name):
                    got = True
                else:
                    da, db = delta(key[0]), delta(key[1])
                    got = (
                        da is not None
                        and db is not None
                        and replayer.pair_commutes(da, db)
                    )
                    if got:
                        self._certified_pairs.add(frozenset((a.key, b.key)))
                pair_cache[key] = got
            return got

        return frozenset(
            i + 1
            for i in eligible
            if all(commutes(i, j) for j in range(n) if j != i)
        )

    def _sanitize_races(self, deltas: Sequence[InstantiationDelta]) -> None:
        """Replay every fired pair in both orders and hard-fail when a pair
        the analysis certified as commuting diverges — a dynamic
        cross-check of the static verdicts (``--sanitize-races``)."""
        index, replayer = self._commute_index, self._pair_replayer
        assert index is not None and replayer is not None
        metrics = self.metrics
        for i, da in enumerate(deltas):
            for db in deltas[i + 1 :]:
                if metrics.enabled:
                    metrics.inc(SANITIZER_REPLAYS)
                if replayer.replay((da, db)) == replayer.replay((db, da)):
                    continue
                a, b = da.inst, db.inst
                certified = index.statically_commutes(
                    a.rule.name, b.rule.name
                ) or frozenset((a.key, b.key)) in self._certified_pairs
                if certified:
                    if self.flightrec is not None:
                        self.flightrec.record(
                            self._fr.EV_RACE,
                            self._cycle,
                            code=self.flightrec.rule_id(a.rule.name),
                            a=self.flightrec.rule_id(b.rule.name),
                        )
                    raise CommuteViolationError(
                        f"race sanitizer: rules {a.rule.name!r} and "
                        f"{b.rule.name!r} were certified as commuting but "
                        f"their firings diverge under reordering in cycle "
                        f"{self._cycle}",
                        rules=(a.rule.name, b.rule.name),
                        cycle=self._cycle,
                    )

    def _drain_matcher_faults(self) -> List[FaultEvent]:
        """Collect fault/recovery events the match backend accumulated
        since the last drain (serial matchers report none)."""
        drain = getattr(self.matcher, "drain_fault_events", None)
        if drain is None:
            return []
        events: List[FaultEvent] = list(drain())
        self.fault_events.extend(events)
        return events

    def _apply(self, merged: CycleDelta, deltas: Sequence[InstantiationDelta]) -> None:
        """Commit a cycle delta: retractions, then assertions, then host
        calls (in firing order). The committed delta — retracted timestamps
        plus asserted records — is appended to :attr:`delta_log`."""
        removed_ts = tuple(wme.timestamp for wme in merged.removes)
        made_records: List[Tuple[str, Dict[str, Value], int]] = []
        for wme in merged.removes:
            self.wm.remove(wme)
            if self.provenance is not None:
                self.provenance.record_retract(wme, self._cycle)
        for (class_name, attrs), origin in zip(merged.makes, merged.make_origins):
            new_wme = self.wm.make(class_name, attrs)
            made_records.append(
                (new_wme.class_name, new_wme.attributes, new_wme.timestamp)
            )
            if self.provenance is not None:
                inst, kind, replaced = origin
                parents = tuple(w for w in inst.wmes if w is not None)
                if kind == "modify":
                    self.provenance.record_modify(
                        new_wme, self._cycle, inst.rule.name, inst.key,
                        parents, replaced,
                    )
                else:
                    self.provenance.record_make(
                        new_wme, self._cycle, inst.rule.name, inst.key, parents
                    )
        self.delta_log.append((removed_ts, tuple(made_records)))
        for delta in deltas:
            self.evaluator.run_calls(delta)

    def run(self, max_cycles: Optional[int] = None) -> RunResult:
        """Run to quiescence / halt; raise
        :class:`~repro.errors.CycleLimitExceeded` past the cycle budget."""
        limit = max_cycles if max_cycles is not None else self.config.max_cycles
        start_cycle = self._cycle
        start_report = len(self.reports)
        start_output = len(self.output)
        wall0 = time.perf_counter()
        reason = "quiescence"
        with self.tracer.span("run", lane="engine", start_cycle=start_cycle):
            try:
                reason = self._run_loop(
                    limit, start_cycle, start_report, start_output, wall0
                )
            except CycleLimitExceeded as exc:
                # step() already dumps for exceptions raised inside a
                # cycle; the limit is raised by the loop itself.
                self._dump_blackbox(f"CycleLimitExceeded: {exc}")
                raise
        wall = time.perf_counter() - wall0
        run_reports = self.reports[start_report:]
        return RunResult(
            cycles=self._cycle - start_cycle,
            firings=sum(r.fired for r in run_reports),
            reason=reason,
            output=self.output[start_output:],
            reports=run_reports,
            wall_time=wall,
            phase_times=Counter(self.phase_times),
        )

    def _run_loop(
        self,
        limit: int,
        start_cycle: int,
        start_report: int,
        start_output: int,
        wall0: float,
    ) -> str:
        """The run loop body (split out so the whole run is one span even
        when it ends by raising :class:`CycleLimitExceeded`)."""
        while True:
            if self._cycle - start_cycle >= limit:
                run_reports = self.reports[start_report:]
                raise CycleLimitExceeded(
                    f"exceeded {limit} cycles; the rule program likely does "
                    f"not terminate",
                    cycles_completed=self._cycle - start_cycle,
                    firings=sum(r.fired for r in run_reports),
                    last_report=run_reports[-1] if run_reports else None,
                    partial=RunResult(
                        cycles=self._cycle - start_cycle,
                        firings=sum(r.fired for r in run_reports),
                        reason="cycle-limit",
                        output=self.output[start_output:],
                        reports=run_reports,
                        wall_time=time.perf_counter() - wall0,
                        phase_times=Counter(self.phase_times),
                    ),
                )
            report = self.step()
            if report is None:
                return (
                    "redaction-quiescence" if self._redaction_quiescent else "quiescence"
                )
            if report.halted:
                return "halt"
            if report.fired == 0:
                return "redaction-quiescence"

    # -- black box -------------------------------------------------------------

    def _note_replay(self) -> None:
        """PairReplayer hook: counted per cycle, flushed by :meth:`_emit`
        as one ``EV_REPLAY`` record instead of flooding the ring."""
        self._replay_count += 1

    def dump_blackbox(self, path: Optional[str] = None, reason: str = "manual") -> Optional[str]:
        """Write a ``*.blackbox`` post-mortem dump of every flight ring
        (the engine's plus all worker rings) and return its path, or
        ``None`` when the recorder is off. Called automatically on
        abnormal exits; callable any time for a live snapshot."""
        if self.flightrec is None:
            return None
        path = path or self.config.blackbox_path or self._fr.default_blackbox_path()
        cfg = {
            f.name: repr(getattr(self.config, f.name))
            for f in self.config.__dataclass_fields__.values()
        }
        seed = getattr(self.config.fault_plan, "seed", None)
        self.flightrec.dump(
            path,
            reason=reason,
            info={"config": cfg, "seed": seed, "cycle": self._cycle},
        )
        return path

    def _dump_blackbox(self, reason: str) -> Optional[str]:
        """Best-effort crash dump: never masks the exception in flight."""
        try:
            return self.dump_blackbox(reason=reason)
        except Exception:  # noqa: BLE001 - post-mortem must not re-crash
            return None

    # -- lifecycle -------------------------------------------------------------

    def close(self) -> None:
        """Release backend resources (idempotent): worker processes held by
        a process matcher, shared-memory segments held by a columnar store.
        Engines over the default dict store and in-process matchers have
        nothing to release, so most callers never need this — but the CLI
        and benchmarks call it so ``--wm-backend columnar`` runs cannot
        leak ``/dev/shm`` segments on the happy path."""
        closer = getattr(self.matcher, "close", None)
        if closer is not None:
            closer()
        wm_close = getattr(self.wm, "close", None)
        if wm_close is not None:
            wm_close()
        if self.flightrec is not None:
            self.flightrec.close()

    def __enter__(self) -> "ParulelEngine":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    # -- checkpoint / resume ---------------------------------------------------

    def checkpoint(self, path: Optional[str] = None) -> Dict[str, Any]:
        """Snapshot the resumable engine state as a JSON-safe dict.

        Captures working memory (records with exact timestamps plus the
        allocation counter), the refraction set, the cycle counter, emitted
        output, halt flags, and the delta log. Values are symbols/numbers,
        so the dict serializes as JSON directly; when ``path`` is given the
        checkpoint is also written there.

        Matcher internals are *not* saved — :meth:`restore` rebuilds the
        match network by replaying the restored WMEs, which yields the same
        conflict set because matchers are deterministic in timestamp order.

        When ``path`` is given the checkpoint is written as a framed,
        digest-protected envelope (:mod:`repro.resilience.checkpoint`)
        via an atomic tmp + fsync + rename, so a crash mid-write can never
        leave a half-written file under the final name.
        """
        records, next_ts = self.wm.dump_records()
        state: Dict[str, Any] = {
            "version": CHECKPOINT_VERSION,
            "cycle": self._cycle,
            "halted": self.halted,
            "redaction_quiescent": self._redaction_quiescent,
            "wm": {
                "records": [list(rec) for rec in records],
                "next_timestamp": next_ts,
            },
            "fired": [
                [rule, list(timestamps)] for rule, timestamps in sorted(self.fired)
            ],
            "output": list(self.output),
            "delta_log": [
                [list(removed), [list(rec) for rec in made]]
                for removed, made in self.delta_log
            ],
        }
        if self.flightrec is not None:
            self.flightrec.record(self._fr.EV_CHECKPOINT, self._cycle, code=0)
        if path is not None:
            from repro.resilience.checkpoint import write_envelope

            write_envelope(path, state, kind="full")
        return state

    def checkpoint_cursor(self) -> Tuple[int, int, int, int]:
        """Opaque position marker for :meth:`checkpoint_delta`: the cycle
        plus the lengths of the append-only logs (delta log, output,
        firing log) at this moment."""
        return (
            self._cycle,
            len(self.delta_log),
            len(self.output),
            len(self._fired_log),
        )

    def checkpoint_delta(
        self, cursor: Tuple[int, int, int, int]
    ) -> Tuple[Dict[str, Any], Tuple[int, int, int, int]]:
        """Incremental checkpoint: everything appended since ``cursor``.

        Returns ``(payload, new_cursor)``. The payload is a JSON-safe dict
        that :func:`repro.resilience.checkpoint.apply_delta_state` replays
        onto the full-checkpoint state taken at ``cursor`` — orders of
        magnitude smaller than a full snapshot when few WMEs change per
        cycle, which is what makes frequent checkpointing affordable.
        """
        base_cycle, d0, o0, f0 = cursor
        payload: Dict[str, Any] = {
            "version": CHECKPOINT_VERSION,
            "kind": "delta",
            "base_cycle": base_cycle,
            "cycle": self._cycle,
            "halted": self.halted,
            "redaction_quiescent": self._redaction_quiescent,
            "next_timestamp": self.wm.latest_timestamp + 1,
            "fired": [
                [rule, list(timestamps)]
                for rule, timestamps in self._fired_log[f0:]
            ],
            "output": list(self.output[o0:]),
            "delta_log": [
                [list(removed), [list(rec) for rec in made]]
                for removed, made in self.delta_log[d0:]
            ],
        }
        if self.flightrec is not None:
            self.flightrec.record(self._fr.EV_CHECKPOINT, self._cycle, code=1)
        return payload, self.checkpoint_cursor()

    @classmethod
    def restore(
        cls,
        program: Program,
        state: Any,
        config: Optional[EngineConfig] = None,
        host_functions: Optional[Mapping[str, HostFunction]] = None,
        trace: Optional[Callable[[CycleReport], None]] = None,
        tracer=None,
        metrics=None,
    ) -> "ParulelEngine":
        """Rebuild an engine from a :meth:`checkpoint` dict or file path.

        The program must be the one the checkpoint was taken from (rules
        are not serialized — only state). The restored engine continues
        byte-identically: same timestamps, same refraction set, same cycle
        numbering.

        ``state`` may be a checkpoint dict, a file path (envelope or
        legacy raw JSON), or a :class:`~repro.resilience.checkpoint`
        store directory — directories fall back to the newest checkpoint
        that verifies. Truncated or malformed inputs raise a typed
        :class:`~repro.errors.ExecutionError` (or its subclass
        ``CheckpointCorruptError``) naming the file, never a raw
        ``json.JSONDecodeError``/``KeyError``.
        """
        src: Optional[str] = None
        if isinstance(state, str):
            from repro.resilience.checkpoint import load_checkpoint_file

            src = state
            state = load_checkpoint_file(state)
        where = f" file {src!r}" if src is not None else ""
        if not isinstance(state, dict):
            raise ExecutionError(
                f"malformed checkpoint{where}: expected an object, "
                f"got {type(state).__name__}"
            )
        version = state.get("version")
        if version != CHECKPOINT_VERSION:
            raise ExecutionError(
                f"checkpoint version {version!r} is not supported "
                f"(expected {CHECKPOINT_VERSION})"
            )
        try:
            records = [tuple(rec) for rec in state["wm"]["records"]]
            next_ts = int(state["wm"]["next_timestamp"])
            cycle = int(state["cycle"])
            halted = bool(state["halted"])
            quiescent = bool(state["redaction_quiescent"])
            fired = {
                (rule, tuple(timestamps)) for rule, timestamps in state["fired"]
            }
            output = list(state["output"])
            delta_log = [
                (
                    tuple(removed),
                    tuple((cn, dict(attrs), ts) for cn, attrs, ts in made),
                )
                for removed, made in state["delta_log"]
            ]
        except (KeyError, TypeError, ValueError) as exc:
            raise ExecutionError(
                f"malformed checkpoint{where}: {exc!r}"
            ) from exc
        wm = _build_wm(config or EngineConfig(), program)
        wm.load_records(records, next_ts)
        engine = cls(
            program,
            config=config,
            host_functions=host_functions,
            wm=wm,
            trace=trace,
            tracer=tracer,
            metrics=metrics,
        )
        engine._cycle = cycle
        engine.halted = halted
        engine._redaction_quiescent = quiescent
        engine.fired = fired
        # Firing order within past cycles is not serialized; a stable
        # sorted order keeps delta checkpoints deterministic post-restore.
        engine._fired_log = sorted(fired)
        engine.output = output
        engine.delta_log = delta_log
        return engine

    # -- introspection ---------------------------------------------------------

    @property
    def cycle(self) -> int:
        return self._cycle

    def conflict_set(self) -> List[Instantiation]:
        """Unrefracted instantiations currently eligible."""
        return [i for i in self.matcher.instantiations() if i.key not in self.fired]

    def explain(self, wme: WME, max_depth: int = 10) -> str:
        """Derivation tree for ``wme`` (requires
        ``EngineConfig(track_provenance=True)``)."""
        if self.provenance is None:
            raise ExecutionError(
                "provenance tracking is off; construct the engine with "
                "EngineConfig(track_provenance=True)"
            )
        return self.provenance.explain(wme, max_depth=max_depth)
