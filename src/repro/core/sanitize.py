"""Sequential pair replay — the semantic core shared by the commute
analysis, the certified redaction fast path, and the runtime race sanitizer.

PARULEL evaluates every surviving instantiation against the *pre-firing*
snapshot and merges the deltas atomically, so "do these two firings
commute?" has a precise operational reading: replay the pair in both
orders under **sequential** semantics — the second firing is re-validated
against the first one's effects (its positive WMEs must still exist, its
negated CEs must still be unmatched) and skipped entirely when
invalidated — and compare the net working-memory effects. If the two
orders agree, no serialization of the pair can be observed through
working memory.

The replay is identity-based: retractions are tracked as a set of the
actual :class:`~repro.wm.wme.WME` objects (content-level tracking would
be wrong when duplicate-content WMEs with distinct timestamps coexist,
which is legal), and assertions as a multiset of content keys. Negated
CEs only need re-checking against *assertions* made during the replay:
the base WM already satisfied them before the cycle, assertions are the
only events that can newly match one, and retractions cannot.

``modify`` mirrors :func:`repro.core.delta.merge_deltas` exactly:
retract the old identity, assert the post-image — and modify-produced
assertions bypass make-dedup, just as the merge appends them outside
``seen_makes``.

Verdicts are WM-only: ``write`` lines, host calls and ``halt`` are
excluded from the comparison (the analysis layers above are responsible
for refusing to certify rules whose RHS has such effects).
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.core.actions import ActionEvaluator, InstantiationDelta
from repro.errors import ExecutionError
from repro.lang.ast import Rule, Value
from repro.match.compile import (
    CompiledRule,
    alpha_test_passes,
    compile_rule,
    value_predicate,
)
from repro.match.instantiation import Instantiation
from repro.wm.wme import WME

__all__ = [
    "ContentKey",
    "PairNet",
    "content_key",
    "PairReplayer",
    "evaluate_delta_pure",
]

#: Content identity of an asserted WME: (class, sorted attribute items).
#: The same key :func:`repro.core.delta.merge_deltas` dedupes makes on.
ContentKey = Tuple[str, Tuple[Tuple[str, Value], ...]]

#: Net effect of one replay order: (retracted WME identities,
#: asserted-content multiset as sorted (key, count) pairs).
PairNet = Tuple[frozenset, Tuple[Tuple[ContentKey, int], ...]]


def content_key(class_name: str, attrs: Dict[str, Value]) -> ContentKey:
    return (class_name, tuple(sorted(attrs.items())))


class _PureEvaluator(ActionEvaluator):
    """An evaluator with no fresh-symbol source: ``(genatom)`` raises, so
    callers learn the RHS is not evaluable without engine state."""

    def gensym(self, prefix: str) -> str:
        raise ExecutionError(
            "(genatom) cannot be evaluated outside the engine's evaluator"
        )


_PURE = _PureEvaluator()


def evaluate_delta_pure(inst: Instantiation) -> Optional[InstantiationDelta]:
    """Evaluate ``inst``'s RHS from its environment alone, or ``None``.

    Returns ``None`` when the RHS is not certifiable without engine state
    or external effects: ``(genatom ...)`` (needs the engine's counter),
    host ``(call ...)`` (order-observable side effects), or any evaluation
    error (the real firing would fail too — nothing to certify).
    """
    try:
        delta = _PURE.evaluate(inst)
    except ExecutionError:
        return None
    if delta.calls:
        return None
    return delta


class PairReplayer:
    """Replays instantiation-delta sequences under sequential semantics.

    One instance per engine/analysis run; it caches plan-free compiled
    rules (for negated-CE re-checking) and carries the engine's
    ``dedupe_makes`` setting so replays mirror the real merge.

    ``on_replay`` (when given) is invoked once per :meth:`replay` call —
    the engine wires it to its flight recorder so shadow-replay volume
    shows up in post-mortem timelines.
    """

    def __init__(self, dedupe_makes: bool = True, on_replay=None) -> None:
        self.dedupe_makes = dedupe_makes
        self.on_replay = on_replay
        self._compiled: Dict[int, CompiledRule] = {}

    def _compiled_rule(self, rule: Rule) -> CompiledRule:
        cached = self._compiled.get(id(rule))
        if cached is None:
            cached = compile_rule(rule, plan=False)
            self._compiled[id(rule)] = cached
        return cached

    # -- validity ----------------------------------------------------------

    def _delta_valid(
        self,
        delta: InstantiationDelta,
        removed: Set[WME],
        added_contents: Sequence[Tuple[str, Dict[str, Value]]],
    ) -> bool:
        """Would this instantiation still exist after the effects so far?"""
        inst = delta.inst
        for wme in inst.wmes:
            if wme is not None and wme in removed:
                return False
        if added_contents:
            compiled = self._compiled_rule(inst.rule)
            for ce in compiled.ces:
                if not ce.negated:
                    continue
                for cls, attrs in added_contents:
                    if cls != ce.class_name:
                        continue
                    probe = WME(ce.class_name, attrs, 0)
                    if not alpha_test_passes(ce.alpha_conds, probe):
                        continue
                    if all(
                        value_predicate(op, probe.get(attr), inst.env[var])
                        for attr, op, var in ce.join_tests
                    ):
                        return False  # a new assertion matches the negation
        return True

    # -- replay ------------------------------------------------------------

    def replay(self, deltas: Sequence[InstantiationDelta]) -> PairNet:
        """Net WM effect of firing ``deltas`` in order, sequentially.

        The first delta is applied unconditionally (the engine only fires
        instantiations valid against the snapshot); each later delta is
        validity-checked against the accumulated effects and skipped
        whole when invalidated.
        """
        if self.on_replay is not None:
            self.on_replay()
        removed: Set[WME] = set()
        added: Counter = Counter()
        added_contents: List[Tuple[str, Dict[str, Value]]] = []
        seen_makes: Set[ContentKey] = set()
        for i, delta in enumerate(deltas):
            if i > 0 and not self._delta_valid(delta, removed, added_contents):
                continue
            for wme in delta.removes:
                removed.add(wme)
            for wme, updates in delta.modifies:
                removed.add(wme)
                attrs = wme.attributes
                attrs.update(updates)
                added[content_key(wme.class_name, attrs)] += 1
                added_contents.append((wme.class_name, attrs))
            for cls, attrs in delta.makes:
                key = content_key(cls, attrs)
                if self.dedupe_makes:
                    if key in seen_makes:
                        continue
                    seen_makes.add(key)
                added[key] += 1
                added_contents.append((cls, dict(attrs)))
        net_added = tuple(sorted((k, n) for k, n in added.items() if n))
        return (frozenset(removed), net_added)

    def pair_commutes(
        self, a: InstantiationDelta, b: InstantiationDelta
    ) -> bool:
        """Do the two firings produce identical net WM effects both ways?"""
        return self.replay((a, b)) == self.replay((b, a))

    def certify_pair(self, a: Instantiation, b: Instantiation) -> bool:
        """Concretely certify one candidate pair *before* the act phase.

        Evaluates both RHSs from their environments alone (no engine
        state) and replays both orders; ``False`` whenever either RHS is
        not purely evaluable or the orders diverge. Used by the certified
        redaction fast path for pairs the static analysis left open.
        """
        da = evaluate_delta_pure(a)
        if da is None:
            return False
        db = evaluate_delta_pure(b)
        if db is None:
            return False
        return self.pair_commutes(da, db)
