"""PARULEL's execution core: the set-oriented recognize-act cycle.

The cycle implemented by :class:`~repro.core.engine.ParulelEngine` is the
paper's central contribution:

1. **Match** — an incremental engine (:mod:`repro.match`) keeps the conflict
   set current;
2. **Redact** — the conflict set is reified as ``instantiation`` WMEs and the
   program's *meta-rules* run to fixpoint, deleting instantiations that must
   not fire (:mod:`repro.core.redaction`) — programmable conflict
   resolution in place of OPS5's hard-wired LEX/MEA;
3. **Fire in parallel** — every surviving instantiation evaluates its RHS
   against the *pre-firing snapshot*; the combined delta is checked for
   interference and applied atomically (:mod:`repro.core.delta`).

Repeat until the firing set is empty, ``(halt)``, or the cycle limit.
"""

from repro.core.actions import ActionEvaluator, InstantiationDelta
from repro.core.delta import CycleDelta, InterferencePolicy, merge_deltas
from repro.core.engine import CycleReport, EngineConfig, ParulelEngine, RunResult
from repro.core.provenance import Derivation, ProvenanceTracker
from repro.core.redaction import MetaLevel, reify_instantiation

__all__ = [
    "ActionEvaluator",
    "CycleDelta",
    "CycleReport",
    "Derivation",
    "EngineConfig",
    "ProvenanceTracker",
    "InstantiationDelta",
    "InterferencePolicy",
    "MetaLevel",
    "ParulelEngine",
    "RunResult",
    "merge_deltas",
    "reify_instantiation",
]
