"""Derivation tracking: which firing produced each working-memory element.

Production-system debugging lives and dies on "why does this WME exist?".
With ``EngineConfig(track_provenance=True)`` the PARULEL engine records a
:class:`Derivation` for every WME:

- ``initial`` — asserted from outside the cycle (``engine.make``),
- ``make`` — created by a firing's ``(make ...)``,
- ``modify`` — the re-assert half of a ``(modify ...)``, with ``replaced``
  pointing at the displaced WME (whose own record is retained, so chains of
  modifies remain walkable).

:meth:`ProvenanceTracker.explain` renders the derivation tree rooted at a
WME; :meth:`ProvenanceTracker.lineage` iterates its transitive support set.
Retired (retracted) WMEs keep their records — explanations routinely pass
through them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.match.instantiation import InstKey
from repro.wm.wme import WME

__all__ = ["Derivation", "ProvenanceTracker"]


@dataclass(frozen=True)
class Derivation:
    """How one WME came to exist."""

    wme: WME
    kind: str  # 'initial' | 'make' | 'modify'
    cycle: int  # 0 for initial assertions
    rule: Optional[str] = None
    inst_key: Optional[InstKey] = None
    #: WMEs matched by the deriving instantiation's positive CEs.
    parents: Tuple[WME, ...] = ()
    #: For 'modify': the WME this one displaced.
    replaced: Optional[WME] = None

    def describe(self) -> str:
        if self.kind == "initial":
            return f"{self.wme!r}  [asserted initially]"
        via = f"rule {self.rule!r} in cycle {self.cycle}"
        if self.kind == "modify":
            return f"{self.wme!r}  [modify of {self.replaced!r} by {via}]"
        return f"{self.wme!r}  [made by {via}]"


class ProvenanceTracker:
    """Records and explains derivations. One per engine run."""

    def __init__(self) -> None:
        self._records: Dict[WME, Derivation] = {}
        self._retired: Dict[WME, int] = {}  # wme -> cycle retracted

    # -- recording ---------------------------------------------------------

    def record_initial(self, wme: WME) -> None:
        self._records[wme] = Derivation(wme=wme, kind="initial", cycle=0)

    def record_make(
        self,
        wme: WME,
        cycle: int,
        rule: str,
        inst_key: InstKey,
        parents: Tuple[WME, ...],
    ) -> None:
        self._records[wme] = Derivation(
            wme=wme,
            kind="make",
            cycle=cycle,
            rule=rule,
            inst_key=inst_key,
            parents=parents,
        )

    def record_modify(
        self,
        wme: WME,
        cycle: int,
        rule: str,
        inst_key: InstKey,
        parents: Tuple[WME, ...],
        replaced: WME,
    ) -> None:
        self._records[wme] = Derivation(
            wme=wme,
            kind="modify",
            cycle=cycle,
            rule=rule,
            inst_key=inst_key,
            parents=parents,
            replaced=replaced,
        )

    def record_retract(self, wme: WME, cycle: int) -> None:
        self._retired[wme] = cycle

    # -- queries ---------------------------------------------------------------

    def derivation(self, wme: WME) -> Optional[Derivation]:
        """The record for a WME (live or retired), or None if untracked."""
        return self._records.get(wme)

    def is_retired(self, wme: WME) -> bool:
        return wme in self._retired

    def retired_in_cycle(self, wme: WME) -> Optional[int]:
        return self._retired.get(wme)

    def __len__(self) -> int:
        return len(self._records)

    def lineage(self, wme: WME) -> Iterator[Derivation]:
        """Depth-first walk over the transitive support of ``wme`` (itself
        first). Parents include modify-chains via ``replaced``."""
        seen: Set[WME] = set()
        stack: List[WME] = [wme]
        while stack:
            current = stack.pop()
            if current in seen:
                continue
            seen.add(current)
            record = self._records.get(current)
            if record is None:
                continue
            yield record
            if record.replaced is not None:
                stack.append(record.replaced)
            stack.extend(reversed(record.parents))

    def derived_by_rule(self, rule_name: str) -> List[Derivation]:
        """All derivations attributed to one rule, in recording order."""
        return [d for d in self._records.values() if d.rule == rule_name]

    def rule_counts(self) -> Dict[str, int]:
        """Derivations per rule (``make`` + ``modify``), name-sorted.

        Initial assertions carry no rule and are excluded — this is the
        "who actually built the final memory" summary ``parulel explain``
        prints as its footer.
        """
        counts: Dict[str, int] = {}
        for record in self._records.values():
            if record.rule is not None:
                counts[record.rule] = counts.get(record.rule, 0) + 1
        return dict(sorted(counts.items()))

    def tree(self, wme: WME, max_depth: int = 10) -> Dict[str, object]:
        """The derivation tree rooted at ``wme`` as a JSON-able dict.

        Mirrors :meth:`explain` node for node — same depth budget, same
        cycle truncation — with ``wme`` rendered via ``repr`` and nested
        ``parents``/``replaced`` children. ``truncated`` marks nodes cut
        by the depth budget or a derivation cycle.
        """

        def walk(current: WME, depth: int, budget: Set[WME]) -> Dict[str, object]:
            record = self._records.get(current)
            node: Dict[str, object] = {"wme": repr(current)}
            if record is None:
                node["kind"] = "untracked"
                return node
            node["kind"] = record.kind
            node["cycle"] = record.cycle
            if record.rule is not None:
                node["rule"] = record.rule
            if current in self._retired:
                node["retractedInCycle"] = self._retired[current]
            if depth >= max_depth or current in budget:
                if record.parents or record.replaced:
                    node["truncated"] = True
                return node
            budget = budget | {current}
            if record.replaced is not None:
                node["replaced"] = walk(record.replaced, depth + 1, budget)
            if record.parents:
                node["parents"] = [
                    walk(parent, depth + 1, budget)
                    for parent in record.parents
                ]
            return node

        return walk(wme, 0, set())

    def explain(self, wme: WME, max_depth: int = 10) -> str:
        """An indented derivation tree for ``wme``::

            (path ^src a ^dst c)@9  [made by rule 'tc-extend' in cycle 2]
              (path ^src a ^dst b)@7  [made by rule 'tc-init' in cycle 1]
                (edge ^src a ^dst b)@1  [asserted initially]
              (edge ^src b ^dst c)@2  [asserted initially]
        """
        lines: List[str] = []

        def walk(current: WME, depth: int, budget: Set[WME]) -> None:
            indent = "  " * depth
            record = self._records.get(current)
            if record is None:
                lines.append(f"{indent}{current!r}  [untracked]")
                return
            suffix = ""
            if current in self._retired:
                suffix = f"  (retracted in cycle {self._retired[current]})"
            lines.append(f"{indent}{record.describe()}{suffix}")
            if depth >= max_depth:
                if record.parents or record.replaced:
                    lines.append(f"{indent}  ...")
                return
            if current in budget:
                lines.append(f"{indent}  (cycle in derivation — truncated)")
                return
            budget = budget | {current}
            if record.replaced is not None:
                walk(record.replaced, depth + 1, budget)
            for parent in record.parents:
                walk(parent, depth + 1, budget)

        walk(wme, 0, set())
        return "\n".join(lines)
