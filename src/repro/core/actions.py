"""RHS evaluation: from an instantiation to its proposed WM delta.

Evaluation is **pure with respect to working memory**: an
:class:`ActionEvaluator` reads the instantiation's environment and the
matched WMEs, and produces an :class:`InstantiationDelta` describing what the
firing *wants* — makes, modifies, removes, output lines, host calls, halt.
Nothing touches the store here; PARULEL's set-oriented semantics requires
all firings of a cycle to be evaluated against the same snapshot before any
delta is applied, and this split is what guarantees it. The sequential OPS5
baseline reuses the same evaluator and simply applies each delta
immediately.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.errors import ExecutionError
from repro.lang.ast import (
    Action,
    BindAction,
    CallAction,
    ComputeExpr,
    ConstantExpr,
    Expr,
    GenatomExpr,
    HaltAction,
    MakeAction,
    ModifyAction,
    RedactAction,
    RemoveAction,
    Value,
    VariableExpr,
    WriteAction,
    _format_value,
)
from repro.match.instantiation import Instantiation
from repro.wm.wme import WME

__all__ = ["ActionEvaluator", "InstantiationDelta", "HostFunction", "evaluate_expr"]

#: Signature of host callbacks reachable via ``(call fn ...)``.
HostFunction = Callable[..., None]


@dataclass
class InstantiationDelta:
    """Everything one firing proposes to do.

    ``modifies`` pairs the *old* WME with its attribute updates; the engine
    turns each into remove+make when applying, but keeps the pairing for
    interference analysis. ``redacts`` only ever comes from meta-rules.
    """

    inst: Instantiation
    makes: List[Tuple[str, Dict[str, Value]]] = field(default_factory=list)
    removes: List[WME] = field(default_factory=list)
    modifies: List[Tuple[WME, Dict[str, Value]]] = field(default_factory=list)
    writes: List[str] = field(default_factory=list)
    calls: List[Tuple[str, Tuple[Value, ...]]] = field(default_factory=list)
    redacts: List[Value] = field(default_factory=list)
    halt: bool = False

    @property
    def touches_wm(self) -> bool:
        return bool(self.makes or self.removes or self.modifies)


def _arith(op: str, a: Value, b: Value) -> Value:
    if not isinstance(a, (int, float)) or not isinstance(b, (int, float)):
        raise ExecutionError(
            f"compute: arithmetic on non-numbers ({a!r} {op} {b!r})"
        )
    if op == "+":
        return a + b
    if op == "-":
        return a - b
    if op == "*":
        return a * b
    if op == "/":
        if b == 0:
            raise ExecutionError("compute: division by zero")
        result = a / b
        # OPS5 arithmetic stays integral when both operands are integers and
        # the division is exact.
        if isinstance(a, int) and isinstance(b, int) and a % b == 0:
            return a // b
        return result
    if op == "//":
        if b == 0:
            raise ExecutionError("compute: division by zero")
        return a // b
    if op == "mod":
        if b == 0:
            raise ExecutionError("compute: modulo by zero")
        return a % b
    raise ExecutionError(f"compute: unknown operator {op!r}")


#: Signature of the fresh-symbol source ``(genatom prefix)`` evaluates via.
Gensym = Callable[[str], str]


def evaluate_expr(
    expr: Expr, env: Mapping[str, Value], gensym: Optional[Gensym] = None
) -> Value:
    """Evaluate an RHS expression in an environment.

    ``gensym`` supplies fresh symbols for ``(genatom ...)``; contexts that
    never see genatom (tests, meta-rule ids) may omit it.
    """
    if isinstance(expr, ConstantExpr):
        return expr.value
    if isinstance(expr, VariableExpr):
        try:
            return env[expr.name]
        except KeyError:
            raise ExecutionError(f"unbound variable <{expr.name}> on RHS") from None
    if isinstance(expr, ComputeExpr):
        items = expr.items
        acc = evaluate_expr(items[0], env, gensym)  # type: ignore[arg-type]
        i = 1
        while i < len(items):
            op = items[i]
            operand = evaluate_expr(items[i + 1], env, gensym)  # type: ignore[arg-type]
            acc = _arith(op, acc, operand)  # type: ignore[arg-type]
            i += 2
        return acc
    if isinstance(expr, GenatomExpr):
        if gensym is None:
            raise ExecutionError("(genatom) used outside an action evaluator")
        return gensym(expr.prefix)
    raise ExecutionError(f"cannot evaluate {expr!r}")


class ActionEvaluator:
    """Evaluates instantiations' RHS action lists into deltas."""

    def __init__(self, host_functions: Optional[Mapping[str, HostFunction]] = None) -> None:
        self.host_functions: Dict[str, HostFunction] = dict(host_functions or {})
        self._genatom_counts: Dict[str, int] = {}

    def register(self, name: str, fn: HostFunction) -> None:
        """Expose a Python callable to rules as ``(call name ...)``."""
        self.host_functions[name] = fn

    def gensym(self, prefix: str) -> str:
        """The fresh-symbol source behind ``(genatom prefix)``: ``prefix1``,
        ``prefix2``, ... — deterministic per evaluator (hence per engine)."""
        n = self._genatom_counts.get(prefix, 0) + 1
        self._genatom_counts[prefix] = n
        return f"{prefix}{n}"

    def evaluate(self, inst: Instantiation) -> InstantiationDelta:
        """Run the RHS of ``inst`` and collect its proposed effects.

        ``bind`` extends a local copy of the environment, visible to later
        actions of the same firing only — exactly OPS5's scoping.
        """
        env: Dict[str, Value] = dict(inst.env)
        delta = InstantiationDelta(inst=inst)
        for action in inst.rule.actions:
            self._one(action, inst, env, delta)
        return delta

    def _one(
        self,
        action: Action,
        inst: Instantiation,
        env: Dict[str, Value],
        delta: InstantiationDelta,
    ) -> None:
        if isinstance(action, MakeAction):
            attrs = {a: evaluate_expr(e, env, self.gensym) for a, e in action.assignments}
            delta.makes.append((action.class_name, attrs))
        elif isinstance(action, ModifyAction):
            wme = self._target(inst, action.ce_index)
            updates = {a: evaluate_expr(e, env, self.gensym) for a, e in action.assignments}
            delta.modifies.append((wme, updates))
        elif isinstance(action, RemoveAction):
            for idx in action.ce_indices:
                delta.removes.append(self._target(inst, idx))
        elif isinstance(action, WriteAction):
            parts = [
                _render(evaluate_expr(e, env, self.gensym)) for e in action.arguments
            ]
            delta.writes.append(" ".join(parts))
        elif isinstance(action, BindAction):
            env[action.name] = evaluate_expr(action.expr, env, self.gensym)
        elif isinstance(action, HaltAction):
            delta.halt = True
        elif isinstance(action, CallAction):
            args = tuple(evaluate_expr(e, env, self.gensym) for e in action.arguments)
            delta.calls.append((action.function, args))
        elif isinstance(action, RedactAction):
            delta.redacts.append(evaluate_expr(action.expr, env, self.gensym))
        else:  # pragma: no cover - parser prevents this
            raise ExecutionError(f"unknown action {action!r}")

    def run_calls(self, delta: InstantiationDelta) -> None:
        """Invoke the host callbacks a delta collected (at apply time)."""
        for name, args in delta.calls:
            fn = self.host_functions.get(name)
            if fn is None:
                raise ExecutionError(
                    f"rule {delta.inst.rule.name!r} calls unregistered host "
                    f"function {name!r}"
                )
            fn(*args)

    @staticmethod
    def _target(inst: Instantiation, ce_index: int) -> WME:
        try:
            return inst.wme_for_ce(ce_index)
        except (IndexError, LookupError) as exc:
            raise ExecutionError(
                f"rule {inst.rule.name!r}: bad condition-element index "
                f"{ce_index} in RHS ({exc})"
            ) from None


def _render(value: Value) -> str:
    """How ``write`` prints values: symbols bare, numbers as Python."""
    if isinstance(value, str):
        return value
    return str(value)
