"""The meta level: programmable conflict resolution by redaction.

PARULEL replaces OPS5's built-in conflict-resolution strategies with
*meta-rules*: productions, written in the same language, that match over a
reified image of the conflict set and delete ("redact") instantiations that
must not fire. This module implements that level:

1. :func:`reify_instantiation` turns each candidate instantiation into a WME
   of the reserved class ``instantiation`` carrying

   - ``rule`` — the rule name,
   - ``id`` — a small integer naming the instantiation within this cycle
     (what ``(redact <i>)`` consumes),
   - ``salience`` / ``specificity`` / ``recency`` — the orderings OPS5's
     strategies were built from, so meta-rules can express LEX/MEA-style
     preferences declaratively,
   - one attribute per LHS variable of the object rule, holding its bound
     value — so meta-rules can compare *what* two instantiations are about.

2. :class:`MetaLevel` asserts those WMEs into the engine's working memory
   (meta-rules may therefore also consult ordinary WMEs), runs the
   meta-program set-oriented to fixpoint, removes redacted reifications as
   it goes (so later meta-cycles see the shrunken conflict set), and returns
   the surviving instantiations. All reifications are retracted before the
   object-level firing phase, whatever happens.

Fixpoint subtleties:

- meta-rule firings use per-phase refraction, so a meta-instantiation fires
  once per redaction phase even if its matched WMEs survive;
- redacting id *i* twice (or redacting an id already gone) is idempotent;
- a symmetric meta-rule that redacts both members of a tie (e.g. matching
  ⟨i, j⟩ and ⟨j, i⟩) empties the pair — exactly as in PARULEL, the
  programmer must break ties (``^id < <j>``-style tests).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.errors import ExecutionError
from repro.core.actions import ActionEvaluator
from repro.lang.analysis import INSTANTIATION_CLASS
from repro.lang.ast import MetaRule, Value
from repro.match.instantiation import InstKey, Instantiation
from repro.match.interface import Matcher, create_matcher
from repro.wm.memory import WorkingMemory
from repro.wm.wme import WME

__all__ = ["MetaLevel", "reify_instantiation", "RedactionReport"]

#: Attributes every reification carries (kept in sync with
#: :data:`repro.lang.analysis.INSTANTIATION_BUILTIN_ATTRS`).
_BUILTINS = ("rule", "id", "salience", "specificity", "recency")


def reify_instantiation(inst: Instantiation, inst_id: int) -> Dict[str, Value]:
    """Attribute dict for the ``instantiation`` WME describing ``inst``.

    Raises :class:`~repro.errors.ExecutionError` if a rule variable collides
    with a built-in attribute name (rename the variable).
    """
    attrs: Dict[str, Value] = {
        "rule": inst.rule.name,
        "id": inst_id,
        "salience": inst.rule.salience,
        "specificity": inst.rule.specificity,
        "recency": inst.recency,
    }
    for var, value in inst.env.items():
        if var in _BUILTINS:
            raise ExecutionError(
                f"rule {inst.rule.name!r}: variable <{var}> collides with the "
                f"built-in instantiation attribute {var!r}; rename it"
            )
        attrs[var] = value
    return attrs


class RedactionReport:
    """What one redaction phase did (feeds Table 3)."""

    __slots__ = ("candidates", "redacted", "meta_cycles", "meta_firings", "skipped")

    def __init__(
        self,
        candidates: int,
        redacted: int,
        meta_cycles: int,
        meta_firings: int,
        skipped: int = 0,
    ) -> None:
        self.candidates = candidates
        self.redacted = redacted
        self.meta_cycles = meta_cycles
        self.meta_firings = meta_firings
        #: Candidates whose reification the certified fast path skipped.
        self.skipped = skipped

    def __repr__(self) -> str:
        return (
            f"RedactionReport(candidates={self.candidates}, "
            f"redacted={self.redacted}, meta_cycles={self.meta_cycles}, "
            f"meta_firings={self.meta_firings}, skipped={self.skipped})"
        )


class MetaLevel:
    """Runs the meta-program over reified conflict sets.

    One instance lives inside each :class:`~repro.core.engine.ParulelEngine`;
    its matcher attaches to the *same* working memory as the object level, so
    meta-rules can read ordinary WMEs alongside ``instantiation`` ones.
    """

    def __init__(
        self,
        meta_rules: Sequence[MetaRule],
        wm: WorkingMemory,
        evaluator: ActionEvaluator,
        matcher_name: str = "rete",
        max_meta_cycles: int = 1000,
        indexed: bool = True,
    ) -> None:
        self.meta_rules = tuple(meta_rules)
        self.wm = wm
        self.evaluator = evaluator
        self.max_meta_cycles = max_meta_cycles
        self.halt_requested = False
        self.writes: List[str] = []
        self.matcher: Optional[Matcher] = (
            create_matcher(matcher_name, self.meta_rules, wm, indexed=indexed)
            if self.meta_rules
            else None
        )

    @property
    def enabled(self) -> bool:
        return self.matcher is not None

    def redact(
        self,
        candidates: Sequence[Instantiation],
        skip_reify: frozenset = frozenset(),
    ) -> Tuple[List[Instantiation], RedactionReport]:
        """Run the meta-program; return survivors (original order) + report.

        ``skip_reify`` holds 1-based candidate ids the certified fast path
        proved safe to leave unreified: their rules are invisible to every
        meta-rule's ``instantiation`` CEs and they commute with every other
        candidate, so the meta-level outcome cannot depend on their
        presence. They keep their ids (a computed-id ``(redact i)`` still
        removes them) but cost no WM churn or meta rematching.
        """
        self.halt_requested = False
        self.writes = []
        if not self.enabled or not candidates:
            return list(candidates), RedactionReport(
                len(candidates), 0, 0, 0, skipped=len(skip_reify)
            )

        by_id: Dict[int, Instantiation] = {}
        wme_by_id: Dict[int, WME] = {}
        for i, inst in enumerate(candidates, start=1):
            by_id[i] = inst
            if i in skip_reify:
                # Burn the timestamp the reification would have taken so
                # every later allocation — and therefore the whole run —
                # stays byte-identical to the unskipped engine.
                self.wm.allocate_timestamp()
                continue
            attrs = reify_instantiation(inst, i)
            wme = self.wm.make(INSTANTIATION_CLASS, attrs)
            wme_by_id[i] = wme

        redacted: Set[int] = set()
        fired: Set[InstKey] = set()
        meta_cycles = 0
        meta_firings = 0
        try:
            assert self.matcher is not None
            while meta_cycles < self.max_meta_cycles:
                ready = [
                    mi
                    for mi in self.matcher.instantiations()
                    if mi.key not in fired
                ]
                if not ready:
                    break
                meta_cycles += 1
                # Set-oriented firing at the meta level too: evaluate all
                # against the current reified state, then apply redactions.
                ids_this_cycle: List[Value] = []
                for mi in ready:
                    fired.add(mi.key)
                    meta_firings += 1
                    delta = self.evaluator.evaluate(mi)
                    self.writes.extend(delta.writes)
                    if delta.halt:
                        self.halt_requested = True
                    self.evaluator.run_calls(delta)
                    ids_this_cycle.extend(delta.redacts)
                progressed = False
                for raw_id in ids_this_cycle:
                    if not isinstance(raw_id, int):
                        raise ExecutionError(
                            f"(redact {raw_id!r}): redact needs the integer "
                            f"^id of an instantiation"
                        )
                    if raw_id in redacted:
                        continue
                    wme = wme_by_id.get(raw_id)
                    if wme is None:
                        if raw_id in by_id:
                            # A computed-id redact of an unreified (skipped)
                            # candidate: honor it — no WME to retract.
                            redacted.add(raw_id)
                            progressed = True
                            continue
                        raise ExecutionError(
                            f"(redact {raw_id}): no instantiation with that id "
                            f"in the current conflict set"
                        )
                    redacted.add(raw_id)
                    self.wm.remove(wme)
                    progressed = True
                if not progressed and not ids_this_cycle:
                    # Meta rules fired but redacted nothing new; refraction
                    # alone cannot spin forever, yet nothing will change the
                    # match state either — fixpoint reached.
                    if all(mi.key in fired for mi in self.matcher.instantiations()):
                        break
            else:
                raise ExecutionError(
                    f"meta-program exceeded {self.max_meta_cycles} redaction "
                    f"cycles — likely a non-terminating meta-rule set"
                )
        finally:
            # Retract surviving reifications before the firing phase.
            for i, wme in wme_by_id.items():
                if i not in redacted:
                    self.wm.discard(wme)

        survivors = [inst for i, inst in by_id.items() if i not in redacted]
        return survivors, RedactionReport(
            len(candidates),
            len(redacted),
            meta_cycles,
            meta_firings,
            skipped=len(skip_reify),
        )
