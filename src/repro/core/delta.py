"""Merging per-instantiation deltas into one atomic cycle delta.

PARULEL fires the whole (post-redaction) firing set against a snapshot.
Because firings cannot see each other's effects, two of them may issue
conflicting updates; the merge detects this **interference** and resolves it
according to policy:

``error`` (default)
    raise :class:`~repro.errors.InterferenceError`. This is the
    paper-faithful stance: PARULEL expects the *programmer's meta-rules* to
    redact conflicting instantiations, so surviving interference is a bug in
    the rule program.
``first``
    the earliest firing (conflict-set order — deterministic) wins; later
    conflicting updates to the same WME are dropped.
``merge``
    per-attribute last-write-wins, applied in firing order; a remove always
    dominates modifies.

What counts as interference on one WME:

- *modify vs modify* with differing values for a common attribute,
- *modify vs remove* (the modify loses meaning),
- plain double-remove and identical modifies are idempotent, never flagged.

Duplicate ``make`` s of identical content within one cycle collapse to a
single WME when ``dedupe_makes`` is on (the set-oriented reading of make as
set insertion — essential for closure-style programs where many firings
derive the same fact); with it off, each make creates its own element as in
OPS5.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import InterferenceError
from repro.core.actions import InstantiationDelta
from repro.lang.ast import Value
from repro.wm.wme import WME

__all__ = ["InterferencePolicy", "CycleDelta", "merge_deltas"]


class InterferencePolicy(enum.Enum):
    """How to resolve conflicting updates inside one firing set."""

    ERROR = "error"
    FIRST = "first"
    MERGE = "merge"

    @classmethod
    def of(cls, value) -> "InterferencePolicy":
        if isinstance(value, cls):
            return value
        return cls(str(value).lower())


#: Provenance attribution for one entry of :attr:`CycleDelta.makes`:
#: ``(instantiation, kind, replaced_wme_or_None)`` with kind 'make'|'modify'.
MakeOrigin = Tuple[object, str, Optional[WME]]


@dataclass
class CycleDelta:
    """The net, conflict-resolved effect of one firing phase."""

    #: WMEs to retract (modify targets included), in deterministic order.
    removes: List[WME] = field(default_factory=list)
    #: New WMEs to assert: (class, attrs). Modify results included.
    makes: List[Tuple[str, Dict[str, Value]]] = field(default_factory=list)
    #: Parallel to ``makes``: who asked for each assertion (first firing
    #: wins attribution for deduped makes). Consumed by provenance tracking.
    make_origins: List[MakeOrigin] = field(default_factory=list)
    #: Output lines, in firing order.
    writes: List[str] = field(default_factory=list)
    halt: bool = False
    #: Number of proposed updates dropped by FIRST/MERGE resolution.
    conflicts_resolved: int = 0
    #: Number of duplicate makes collapsed by dedupe.
    makes_deduped: int = 0

    @property
    def size(self) -> int:
        return len(self.removes) + len(self.makes)


def merge_deltas(
    deltas: Sequence[InstantiationDelta],
    policy: InterferencePolicy = InterferencePolicy.ERROR,
    dedupe_makes: bool = True,
) -> CycleDelta:
    """Combine per-firing deltas into one :class:`CycleDelta`.

    Deterministic given delta order (engines pass conflict-set order).
    Raises :class:`~repro.errors.InterferenceError` under the ``error``
    policy when two firings conflict on a WME.
    """
    out = CycleDelta()

    removed: Dict[WME, str] = {}  # wme -> rule name that removed it
    # wme -> (first modifying instantiation, accumulated updates).
    modified: Dict[WME, Tuple[object, Dict[str, Value]]] = {}
    seen_makes: Dict[Tuple, None] = {}

    for delta in deltas:
        rule_name = delta.inst.rule.name
        out.writes.extend(delta.writes)
        if delta.halt:
            out.halt = True

        for wme in delta.removes:
            prior_mod = modified.get(wme)
            if prior_mod is not None:
                if policy is InterferencePolicy.ERROR:
                    raise InterferenceError(
                        f"interference on {wme!r}: modified by rule "
                        f"{prior_mod[0].rule.name!r} and removed by rule "
                        f"{rule_name!r} in the same cycle (add a meta-rule "
                        f"to redact one)",
                        wme=wme,
                        rules=(prior_mod[0].rule.name, rule_name),
                    )
                if policy is InterferencePolicy.FIRST:
                    out.conflicts_resolved += 1
                    continue  # the earlier modify wins, drop the remove
                # MERGE: remove dominates.
                del modified[wme]
                out.conflicts_resolved += 1
            removed.setdefault(wme, rule_name)

        for wme, updates in delta.modifies:
            if wme in removed:
                if policy is InterferencePolicy.ERROR:
                    raise InterferenceError(
                        f"interference on {wme!r}: removed by rule "
                        f"{removed[wme]!r} and modified by rule {rule_name!r} "
                        f"in the same cycle (add a meta-rule to redact one)",
                        wme=wme,
                        rules=(removed[wme], rule_name),
                    )
                out.conflicts_resolved += 1
                continue  # remove dominates (FIRST and MERGE alike)
            prior = modified.get(wme)
            if prior is None:
                modified[wme] = (delta.inst, dict(updates))
                continue
            prior_inst, acc = prior
            prior_rule = prior_inst.rule.name
            clash = {
                a for a, v in updates.items() if a in acc and acc[a] != v
            }
            if clash:
                if policy is InterferencePolicy.ERROR:
                    attrs = ", ".join(sorted(clash))
                    raise InterferenceError(
                        f"interference on {wme!r}: rules {prior_rule!r} and "
                        f"{rule_name!r} both modify attribute(s) {attrs} with "
                        f"different values (add a meta-rule to redact one)",
                        wme=wme,
                        rules=(prior_rule, rule_name),
                    )
                out.conflicts_resolved += 1
                if policy is InterferencePolicy.FIRST:
                    # Keep only this firing's non-clashing novelties.
                    for a, v in updates.items():
                        acc.setdefault(a, v)
                    continue
            # MERGE (or compatible updates): last write per attribute wins.
            if policy is InterferencePolicy.FIRST:
                for a, v in updates.items():
                    acc.setdefault(a, v)
            else:
                acc.update(updates)

        for class_name, attrs in delta.makes:
            if dedupe_makes:
                key = (class_name, tuple(sorted(attrs.items())))
                if key in seen_makes:
                    out.makes_deduped += 1
                    continue
                seen_makes[key] = None
            out.makes.append((class_name, dict(attrs)))
            out.make_origins.append((delta.inst, "make", None))

    # Assemble final order: removes (incl. modify retractions) then makes.
    out.removes.extend(removed)
    for wme, (inst, updates) in modified.items():
        out.removes.append(wme)
        merged = wme.attributes
        merged.update(updates)
        out.makes.append((wme.class_name, merged))
        out.make_origins.append((inst, "modify", wme))
    return out
