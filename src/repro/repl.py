"""Interactive PARULEL session: assert facts, step cycles, inspect state.

Invoked as ``parulel repl PROGRAM``. The prompt accepts:

``(class ^attr value ...)``
    assert a WME;
``:run [n]``
    run to quiescence (or at most ``n`` cycles), printing a per-cycle line;
``:step``
    one cycle;
``:cs``
    show the current (unrefracted) conflict set;
``:wm [class]``
    list working memory (optionally one class);
``:retract <timestamp>``
    retract the WME with that timestamp;
``:explain (class ^attr value ...)``
    derivation tree of a matching live WME (provenance is always on in the
    REPL);
``:lint``
    static interference report for the loaded program;
``:help`` / ``:quit``

Designed to be drivable programmatically (tests feed ``input_lines``), so
the interactive loop is a thin shell over :class:`ReplSession`.
"""

from __future__ import annotations

import sys
from typing import Callable, Iterable, List, Optional

from repro.core import EngineConfig, ParulelEngine
from repro.errors import ReproError
from repro.lang.analysis import analyze_program
from repro.lang.ast import Program
from repro.wm.io import parse_facts_text

__all__ = ["ReplSession", "run_repl"]

HELP = """commands:
  (class ^attr value ...)   assert a WME
  :run [n]                  run to quiescence (or at most n cycles)
  :step                     run one cycle
  :cs                       show the current conflict set
  :wm [class]               list working memory
  :retract <timestamp>      retract a WME by its @timestamp
  :explain (class ^a v ...) derivation tree of a matching live WME
  :lint                     static interference report
  :help                     this text
  :quit                     leave"""


class ReplSession:
    """One interactive engine session; every command returns output text."""

    def __init__(self, program: Program, matcher: str = "rete") -> None:
        analyze_program(program)
        self.program = program
        self.engine = ParulelEngine(
            program,
            EngineConfig(matcher=matcher, track_provenance=True),
        )

    # -- command dispatch -----------------------------------------------------

    def execute(self, line: str) -> Optional[str]:
        """Run one input line; returns output text, or None on :quit."""
        line = line.strip()
        if not line or line.startswith(";"):
            return ""
        try:
            if line.startswith("("):
                return self._assert_facts(line)
            if line.startswith(":"):
                return self._command(line)
            return f"unrecognized input (try :help): {line!r}"
        except ReproError as exc:
            return f"error: {exc}"

    def _assert_facts(self, line: str) -> str:
        facts = parse_facts_text(line)
        out = []
        for cls, attrs in facts:
            wme = self.engine.make(cls, attrs)
            out.append(f"asserted {wme!r}")
        return "\n".join(out)

    def _command(self, line: str) -> Optional[str]:
        parts = line.split(None, 1)
        cmd, arg = parts[0], (parts[1] if len(parts) > 1 else "")
        if cmd in (":quit", ":q", ":exit"):
            return None
        if cmd == ":help":
            return HELP
        if cmd == ":run":
            limit = int(arg) if arg.strip() else None
            return self._run(limit)
        if cmd == ":step":
            report = self.engine.step()
            if report is None:
                return "quiescent"
            return self._describe_cycle(report)
        if cmd == ":cs":
            insts = self.engine.conflict_set()
            if not insts:
                return "conflict set empty"
            return "\n".join(f"  {i!r}  {i.env}" for i in insts)
        if cmd == ":wm":
            cls = arg.strip()
            wmes = (
                self.engine.wm.by_class(cls)
                if cls
                else self.engine.wm.snapshot()
            )
            if not wmes:
                return "(empty)"
            return "\n".join(f"  {w!r}" for w in wmes)
        if cmd == ":retract":
            ts = int(arg.strip())
            for wme in self.engine.wm.snapshot():
                if wme.timestamp == ts:
                    self.engine.wm.remove(wme)
                    return f"retracted {wme!r}"
            return f"no WME with timestamp {ts}"
        if cmd == ":explain":
            facts = parse_facts_text(arg)
            if len(facts) != 1:
                return "usage: :explain (class ^attr value ...)"
            cls, attrs = facts[0]
            matches = self.engine.wm.find(cls, attrs)
            if not matches:
                return "no live WME matches"
            return "\n\n".join(self.engine.explain(w) for w in matches)
        if cmd == ":lint":
            from repro.tools.lint import lint_program

            report = lint_program(self.program)
            return report or "clean: no interference candidates"
        return f"unknown command {cmd!r} (try :help)"

    # -- helpers ---------------------------------------------------------------

    def _describe_cycle(self, report) -> str:
        parts = [
            f"cycle {report.cycle}: fired {report.fired}",
        ]
        if report.redaction.redacted:
            parts.append(f"redacted {report.redaction.redacted}")
        parts.append(f"Δwm -{report.delta_removes}/+{report.delta_makes}")
        line = ", ".join(parts)
        for text in report.writes:
            line += f"\n  | {text}"
        if report.halted:
            line += "\n  (halt)"
        return line

    def _run(self, limit: Optional[int]) -> str:
        lines: List[str] = []
        cycles = 0
        while limit is None or cycles < limit:
            report = self.engine.step()
            if report is None:
                lines.append("quiescent")
                break
            cycles += 1
            lines.append(self._describe_cycle(report))
            if report.halted:
                break
            if report.fired == 0:
                lines.append("(redaction quiescence)")
                break
        else:
            lines.append(f"(stopped after {limit} cycles)")
        return "\n".join(lines)


def run_repl(
    program: Program,
    input_lines: Optional[Iterable[str]] = None,
    write: Callable[[str], None] = lambda s: print(s),
    matcher: str = "rete",
) -> int:
    """Drive a :class:`ReplSession` from an iterable of lines (stdin when
    None). Returns a process exit code."""
    session = ReplSession(program, matcher=matcher)
    write("PARULEL repl — :help for commands")

    def lines():
        if input_lines is not None:
            yield from input_lines
            return
        while True:
            try:
                yield input("parulel> ")
            except EOFError:
                return

    for line in lines():
        out = session.execute(line)
        if out is None:
            break
        if out:
            write(out)
    return 0
