"""Working memory: WMEs, class templates, and the indexed store.

Working memory is the mutable heart of a production system. This package
keeps it small and fast:

- :class:`~repro.wm.wme.WME` — an immutable working-memory element with a
  monotonically increasing timestamp (OPS5's recency),
- :class:`~repro.wm.memory.WorkingMemory` — the store, indexed by class name
  (and lazily by attribute value) so match engines can seed joins cheaply,
- :class:`~repro.wm.template.TemplateRegistry` — per-class attribute
  declarations from ``literalize``, enforcing shape on ``make``.
"""

from repro.wm.io import dump, dumps, load_facts, parse_facts_text
from repro.wm.memory import WorkingMemory
from repro.wm.template import TemplateRegistry
from repro.wm.wme import WME

__all__ = [
    "WME",
    "WorkingMemory",
    "TemplateRegistry",
    "dump",
    "dumps",
    "load_facts",
    "parse_facts_text",
]
