"""Class templates from ``literalize`` declarations.

A :class:`TemplateRegistry` records, per WME class, which attributes are
legal. Engines consult it on every ``make``/``modify`` when the program
declared classes; undeclared programs run untyped (registry stays
permissive), matching how :mod:`repro.lang.analysis` treats them.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Mapping, Optional

from repro.errors import WorkingMemoryError
from repro.lang.analysis import INSTANTIATION_CLASS
from repro.lang.ast import Program, Value

__all__ = ["TemplateRegistry"]


class TemplateRegistry:
    """Per-class attribute declarations.

    ``strict`` registries reject WMEs of undeclared classes or with
    undeclared attributes; permissive ones (the default when a program has no
    ``literalize`` forms) accept anything. The meta-level ``instantiation``
    class is always accepted — its attribute set depends on the rule being
    reified, not on a static declaration.
    """

    def __init__(self, strict: bool = False) -> None:
        self._templates: Dict[str, FrozenSet[str]] = {}
        self.strict = strict

    @classmethod
    def from_program(cls, program: Program) -> "TemplateRegistry":
        """Build a registry from a program's ``literalize`` declarations.

        Strict iff the program declares at least one class.
        """
        reg = cls(strict=bool(program.literalizes))
        for lit in program.literalizes:
            reg.declare(lit.class_name, lit.attributes)
        return reg

    def declare(self, class_name: str, attributes: Iterable[str]) -> None:
        """Register (or widen) a class declaration."""
        existing = self._templates.get(class_name, frozenset())
        self._templates[class_name] = existing | frozenset(attributes)

    def attributes(self, class_name: str) -> Optional[FrozenSet[str]]:
        """Declared attributes for a class, or ``None`` if undeclared."""
        return self._templates.get(class_name)

    def is_declared(self, class_name: str) -> bool:
        return class_name in self._templates

    @property
    def class_names(self) -> FrozenSet[str]:
        return frozenset(self._templates)

    def validate(self, class_name: str, attrs: Mapping[str, Value]) -> None:
        """Raise :class:`~repro.errors.WorkingMemoryError` if the proposed WME
        violates the declarations (no-op when permissive)."""
        if not self.strict or class_name == INSTANTIATION_CLASS:
            return
        allowed = self._templates.get(class_name)
        if allowed is None:
            raise WorkingMemoryError(
                f"class {class_name!r} was never declared with literalize"
            )
        for attr in attrs:
            if attr not in allowed:
                raise WorkingMemoryError(
                    f"class {class_name!r} has no attribute {attr!r} "
                    f"(declared: {sorted(allowed)})"
                )
