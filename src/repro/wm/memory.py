"""The indexed working-memory store.

:class:`WorkingMemory` owns the timestamp counter and keeps WMEs indexed by
class name, in timestamp order. It notifies registered listeners (match
engines) of every add/remove, which is how RETE/TREAT stay incremental.

Design notes (hpc-parallel guide: measure, index, avoid copies):

- the per-class index is a dict of insertion-ordered dicts used as ordered
  sets — O(1) add/remove while preserving timestamp order for deterministic
  iteration;
- listeners receive the *same* WME objects stored in the index; WMEs are
  immutable so sharing is safe across engines and (simulated) sites;
- ``snapshot()`` is O(n) but only taken by tooling, never inside the match
  loop.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, Iterator, List, Mapping, Optional, Tuple

from repro.errors import WorkingMemoryError
from repro.lang.ast import Value
from repro.wm.template import TemplateRegistry
from repro.wm.wme import WME

__all__ = ["WorkingMemory"]

#: Listener signature: ``callback(wme, added)`` — ``added`` is True for an
#: assert and False for a retract.
Listener = Callable[[WME, bool], None]


class WorkingMemory:
    """Timestamped, class-indexed store of WMEs."""

    def __init__(self, templates: Optional[TemplateRegistry] = None) -> None:
        self._by_class: Dict[str, Dict[WME, None]] = {}
        self._count = 0
        self._next_timestamp = 1
        self._listeners: List[Listener] = []
        self.templates = templates or TemplateRegistry()

    # -- listeners -----------------------------------------------------------

    def add_listener(self, listener: Listener) -> None:
        """Register a match engine (or tracer) for add/remove notifications."""
        self._listeners.append(listener)

    def remove_listener(self, listener: Listener) -> None:
        self._listeners.remove(listener)

    # -- mutation --------------------------------------------------------------

    def make(self, class_name: str, attrs: Optional[Mapping[str, Value]] = None, **kw: Value) -> WME:
        """Assert a new WME and return it.

        Attributes come from the ``attrs`` mapping and/or keyword arguments
        (keywords use ``_`` for ``-``, as in the builder DSL).
        """
        merged: Dict[str, Value] = dict(attrs or {})
        for key, val in kw.items():
            merged[key.replace("_", "-")] = val
        self.templates.validate(class_name, merged)
        wme = WME(class_name, merged, self._next_timestamp)
        self._next_timestamp += 1
        self._insert(wme)
        return wme

    def add(self, wme: WME) -> None:
        """Assert a pre-built WME (timestamp must be fresh).

        Used by engines that construct WMEs themselves via
        :meth:`allocate_timestamp`.
        """
        if wme.timestamp >= self._next_timestamp:
            self._next_timestamp = wme.timestamp + 1
        self._insert(wme)

    def allocate_timestamp(self) -> int:
        """Reserve the next timestamp (engines building WMEs directly)."""
        ts = self._next_timestamp
        self._next_timestamp += 1
        return ts

    def _insert(self, wme: WME) -> None:
        bucket = self._by_class.setdefault(wme.class_name, {})
        if wme in bucket:
            raise WorkingMemoryError(f"duplicate WME {wme!r}")
        bucket[wme] = None
        self._count += 1
        for listener in self._listeners:
            listener(wme, True)

    def remove(self, wme: WME) -> None:
        """Retract a WME; raises if it is not present."""
        bucket = self._by_class.get(wme.class_name)
        if bucket is None or wme not in bucket:
            raise WorkingMemoryError(f"cannot remove absent WME {wme!r}")
        del bucket[wme]
        self._count -= 1
        for listener in self._listeners:
            listener(wme, False)

    def discard(self, wme: WME) -> bool:
        """Retract if present; return whether anything was removed."""
        bucket = self._by_class.get(wme.class_name)
        if bucket is None or wme not in bucket:
            return False
        del bucket[wme]
        self._count -= 1
        for listener in self._listeners:
            listener(wme, False)
        return True

    def clear_class(self, class_name: str) -> int:
        """Retract every WME of one class (used to clear meta-level state).

        Returns the number retracted. Listeners see each retraction.
        """
        bucket = self._by_class.get(class_name)
        if not bucket:
            return 0
        victims = list(bucket)
        for wme in victims:
            del bucket[wme]
            self._count -= 1
            for listener in self._listeners:
                listener(wme, False)
        return len(victims)

    # -- queries ----------------------------------------------------------------

    def __len__(self) -> int:
        return self._count

    def __contains__(self, wme: WME) -> bool:
        bucket = self._by_class.get(wme.class_name)
        return bucket is not None and wme in bucket

    def __iter__(self) -> Iterator[WME]:
        """All WMEs, grouped by class, each class in timestamp order."""
        for bucket in self._by_class.values():
            yield from bucket

    def by_class(self, class_name: str) -> Tuple[WME, ...]:
        """All live WMEs of one class, in timestamp order."""
        bucket = self._by_class.get(class_name)
        return tuple(bucket) if bucket else ()

    def count_class(self, class_name: str) -> int:
        bucket = self._by_class.get(class_name)
        return len(bucket) if bucket else 0

    def find(
        self, class_name: str, where: Optional[Mapping[str, Value]] = None, **kw: Value
    ) -> Tuple[WME, ...]:
        """Convenience query: WMEs of a class whose attributes equal the
        given values. Linear in the class bucket; for tests and tooling."""
        wanted: Dict[str, Value] = dict(where or {})
        for key, val in kw.items():
            wanted[key.replace("_", "-")] = val
        out = []
        for wme in self.by_class(class_name):
            if all(wme.get(a) == v for a, v in wanted.items()):
                out.append(wme)
        return tuple(out)

    def snapshot(self) -> Tuple[WME, ...]:
        """All live WMEs in global timestamp order (tooling only)."""
        return tuple(sorted(self, key=lambda w: w.timestamp))

    @property
    def latest_timestamp(self) -> int:
        """The most recently allocated timestamp (0 if none yet)."""
        return self._next_timestamp - 1
