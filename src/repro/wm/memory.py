"""The indexed working-memory store.

:class:`WorkingMemory` owns the timestamp counter and keeps WMEs indexed by
class name, in timestamp order. It notifies registered listeners (match
engines) of every add/remove, which is how RETE/TREAT stay incremental.

Design notes (hpc-parallel guide: measure, index, avoid copies):

- the per-class index is a dict of insertion-ordered dicts used as ordered
  sets — O(1) add/remove while preserving timestamp order for deterministic
  iteration;
- listeners receive the *same* WME objects stored in the index; WMEs are
  immutable so sharing is safe across engines and (simulated) sites;
- ``snapshot()`` is O(n) but only taken by tooling, never inside the match
  loop.
"""

from __future__ import annotations

from typing import (
    Callable,
    Dict,
    Iterable,
    Iterator,
    List,
    Mapping,
    NamedTuple,
    Optional,
    Tuple,
)

from repro.errors import WorkingMemoryError
from repro.lang.ast import Value
from repro.wm.template import TemplateRegistry
from repro.wm.wme import WME

__all__ = ["WorkingMemory", "WMDelta", "DeltaRecorder"]

#: Listener signature: ``callback(wme, added)`` — ``added`` is True for an
#: assert and False for a retract.
Listener = Callable[[WME, bool], None]


class WorkingMemory:
    """Timestamped, class-indexed store of WMEs."""

    def __init__(self, templates: Optional[TemplateRegistry] = None) -> None:
        self._by_class: Dict[str, Dict[WME, None]] = {}
        self._count = 0
        self._next_timestamp = 1
        self._listeners: List[Listener] = []
        self.templates = templates or TemplateRegistry()

    # -- listeners -----------------------------------------------------------

    def add_listener(self, listener: Listener) -> None:
        """Register a match engine (or tracer) for add/remove notifications."""
        self._listeners.append(listener)

    def remove_listener(self, listener: Listener) -> None:
        self._listeners.remove(listener)

    # -- mutation --------------------------------------------------------------

    def make(self, class_name: str, attrs: Optional[Mapping[str, Value]] = None, **kw: Value) -> WME:
        """Assert a new WME and return it.

        Attributes come from the ``attrs`` mapping and/or keyword arguments
        (keywords use ``_`` for ``-``, as in the builder DSL).
        """
        merged: Dict[str, Value] = dict(attrs or {})
        for key, val in kw.items():
            merged[key.replace("_", "-")] = val
        self.templates.validate(class_name, merged)
        wme = WME(class_name, merged, self._next_timestamp)
        self._next_timestamp += 1
        self._insert(wme)
        return wme

    def add(self, wme: WME) -> None:
        """Assert a pre-built WME (timestamp must be fresh).

        Used by engines that construct WMEs themselves via
        :meth:`allocate_timestamp`.
        """
        if wme.timestamp >= self._next_timestamp:
            self._next_timestamp = wme.timestamp + 1
        self._insert(wme)

    def allocate_timestamp(self) -> int:
        """Reserve the next timestamp (engines building WMEs directly)."""
        ts = self._next_timestamp
        self._next_timestamp += 1
        return ts

    def _insert(self, wme: WME) -> None:
        bucket = self._by_class.setdefault(wme.class_name, {})
        if wme in bucket:
            raise WorkingMemoryError(f"duplicate WME {wme!r}")
        bucket[wme] = None
        self._count += 1
        for listener in self._listeners:
            listener(wme, True)

    def bulk_load(self, wmes: Iterable[WME]) -> None:
        """Assert many prepared WMEs at once (replica bootstrap fast path).

        Trusts the caller that the WMEs are distinct and absent — the
        batches come from an authoritative source (a columnar liveness
        snapshot, a checkpoint), so duplicate probing per WME is skipped
        and each class bucket is extended with one C-level dict update.
        With listeners attached it falls back to per-WME :meth:`add`
        (listeners must observe every event individually).
        """
        wmes = list(wmes)
        if not wmes:
            return
        if self._listeners:
            for wme in wmes:
                self.add(wme)
            return
        grouped: Dict[str, List[WME]] = {}
        last_ts = 0
        for wme in wmes:
            grouped.setdefault(wme.class_name, []).append(wme)
            if wme.timestamp > last_ts:
                last_ts = wme.timestamp
        for class_name, group in grouped.items():
            bucket = self._by_class.setdefault(class_name, {})
            bucket.update(dict.fromkeys(group))
            self._count += len(group)
        if last_ts >= self._next_timestamp:
            self._next_timestamp = last_ts + 1

    def remove(self, wme: WME) -> None:
        """Retract a WME; raises if it is not present."""
        bucket = self._by_class.get(wme.class_name)
        if bucket is None or wme not in bucket:
            raise WorkingMemoryError(f"cannot remove absent WME {wme!r}")
        del bucket[wme]
        self._count -= 1
        for listener in self._listeners:
            listener(wme, False)

    def discard(self, wme: WME) -> bool:
        """Retract if present; return whether anything was removed."""
        bucket = self._by_class.get(wme.class_name)
        if bucket is None or wme not in bucket:
            return False
        del bucket[wme]
        self._count -= 1
        for listener in self._listeners:
            listener(wme, False)
        return True

    def clear_class(self, class_name: str) -> int:
        """Retract every WME of one class (used to clear meta-level state).

        Returns the number retracted. Listeners see each retraction.
        """
        bucket = self._by_class.get(class_name)
        if not bucket:
            return 0
        victims = list(bucket)
        for wme in victims:
            del bucket[wme]
            self._count -= 1
            for listener in self._listeners:
                listener(wme, False)
        return len(victims)

    # -- queries ----------------------------------------------------------------

    def __len__(self) -> int:
        return self._count

    def __contains__(self, wme: WME) -> bool:
        bucket = self._by_class.get(wme.class_name)
        return bucket is not None and wme in bucket

    def __iter__(self) -> Iterator[WME]:
        """All WMEs, grouped by class, each class in timestamp order."""
        for bucket in self._by_class.values():
            yield from bucket

    def by_class(self, class_name: str) -> Tuple[WME, ...]:
        """All live WMEs of one class, in timestamp order."""
        bucket = self._by_class.get(class_name)
        return tuple(bucket) if bucket else ()

    def count_class(self, class_name: str) -> int:
        bucket = self._by_class.get(class_name)
        return len(bucket) if bucket else 0

    def find(
        self, class_name: str, where: Optional[Mapping[str, Value]] = None, **kw: Value
    ) -> Tuple[WME, ...]:
        """Convenience query: WMEs of a class whose attributes equal the
        given values. Linear in the class bucket; for tests and tooling."""
        wanted: Dict[str, Value] = dict(where or {})
        for key, val in kw.items():
            wanted[key.replace("_", "-")] = val
        out = []
        for wme in self.by_class(class_name):
            if all(wme.get(a) == v for a, v in wanted.items()):
                out.append(wme)
        return tuple(out)

    def snapshot(self) -> Tuple[WME, ...]:
        """All live WMEs in global timestamp order (tooling only)."""
        return tuple(sorted(self, key=lambda w: w.timestamp))

    @property
    def latest_timestamp(self) -> int:
        """The most recently allocated timestamp (0 if none yet)."""
        return self._next_timestamp - 1

    # -- checkpointable state ---------------------------------------------------

    def dump_records(self) -> Tuple[List["WMERecord"], int]:
        """Serializable state: ``(records, next_timestamp)``.

        Unlike :mod:`repro.wm.io`'s facts text, records keep their
        timestamps — reloading reproduces the store *byte-identically*,
        which engine checkpoint/resume (and replica rebuilds) require.
        ``next_timestamp`` is carried separately because retractions can
        leave the counter past every live element.
        """
        records = [
            (w.class_name, w.attributes, w.timestamp) for w in self.snapshot()
        ]
        return records, self._next_timestamp

    def load_records(
        self, records: Iterable["WMERecord"], next_timestamp: Optional[int] = None
    ) -> None:
        """Re-assert dumped records (store must be empty), restoring the
        exact timestamps; then restore the allocation counter."""
        if self._count:
            raise WorkingMemoryError(
                "load_records needs an empty working memory"
            )
        for class_name, attrs, ts in records:
            self.add(WME(class_name, dict(attrs), ts))
        if next_timestamp is not None:
            if next_timestamp <= self.latest_timestamp:
                raise WorkingMemoryError(
                    f"next_timestamp {next_timestamp} is not past the latest "
                    f"live timestamp {self.latest_timestamp}"
                )
            self._next_timestamp = next_timestamp


# ---------------------------------------------------------------------------
# Delta export (serializable change logs for out-of-process replicas)
# ---------------------------------------------------------------------------

#: Wire form of one asserted WME: ``(class_name, attrs, timestamp)``.
#: Attribute values are symbols/ints/floats, so the record is picklable
#: without carrying :class:`WME`'s derived caches across the wire.
WMERecord = Tuple[str, Dict[str, Value], int]


class WMDelta(NamedTuple):
    """Net change to a working memory over an observation window.

    ``adds`` are live WMEs asserted in the window (in timestamp order);
    ``removes`` are the timestamps of pre-window WMEs retracted in the
    window. Timestamps are unique for the lifetime of a store, so they
    identify WMEs across replicas. Add/remove pairs that cancel inside the
    window (e.g. meta-level reifications) are compacted away, which makes
    the application order "removes, then adds" always safe.
    """

    adds: Tuple[WME, ...]
    removes: Tuple[int, ...]

    @property
    def empty(self) -> bool:
        return not self.adds and not self.removes

    def wire(self) -> Tuple[Tuple[WMERecord, ...], Tuple[int, ...]]:
        """Picklable form: records instead of WME objects."""
        return (
            tuple((w.class_name, w.attributes, w.timestamp) for w in self.adds),
            self.removes,
        )

    @staticmethod
    def apply_wire(
        wm: "WorkingMemory",
        by_timestamp: Dict[int, WME],
        wire: Tuple[Tuple[WMERecord, ...], Tuple[int, ...]],
    ) -> None:
        """Replay a wire delta into a replica store.

        ``by_timestamp`` is the replica's timestamp index, updated in
        place — removes resolve through it and adds register in it.
        """
        adds, removes = wire
        for ts in removes:
            wm.remove(by_timestamp.pop(ts))
        for class_name, attrs, ts in adds:
            wme = WME(class_name, attrs, ts)
            wm.add(wme)
            by_timestamp[ts] = wme


class DeltaRecorder:
    """Accumulates a working memory's changes as compacted deltas.

    Attach once; every :meth:`drain` returns the net :class:`WMDelta` since
    the previous drain (the first drain covers the pre-attach contents when
    ``prime`` is true, so a replica built empty and fed every drain in
    order converges to the live store). Used by the process-parallel match
    backend to ship WM deltas instead of whole memories.
    """

    def __init__(self, wm: "WorkingMemory", prime: bool = True) -> None:
        self.wm = wm
        self._adds: Dict[int, WME] = {}
        self._removes: List[int] = []
        if prime:
            for wme in wm.snapshot():
                self._adds[wme.timestamp] = wme
        wm.add_listener(self._on_event)
        self._attached = True

    def _on_event(self, wme: WME, added: bool) -> None:
        if added:
            self._adds[wme.timestamp] = wme
        elif wme.timestamp in self._adds:
            # Added and removed within the window: net zero, ship nothing.
            del self._adds[wme.timestamp]
        else:
            self._removes.append(wme.timestamp)

    def drain(self) -> WMDelta:
        """The net delta since the last drain; resets the window."""
        delta = WMDelta(tuple(self._adds.values()), tuple(self._removes))
        self._adds = {}
        self._removes = []
        return delta

    def detach(self) -> None:
        if self._attached:
            self.wm.remove_listener(self._on_event)
            self._attached = False
