"""Working-memory elements.

A WME is an immutable record ``(class, {attr: value}, timestamp)``. The
timestamp is assigned by the :class:`~repro.wm.memory.WorkingMemory` when the
element is asserted and orders elements by recency — OPS5's LEX/MEA conflict
resolution and PARULEL's reified ``recency`` attribute both read it.

Attribute values are restricted to symbols (``str``), ``int`` and ``float``.
Missing attributes read as the symbol ``nil``, matching OPS5.
"""

from __future__ import annotations

from typing import Dict, Iterator, Mapping, Tuple

from repro.lang.ast import Value, _format_value

__all__ = ["WME", "NIL"]

#: The distinguished "absent" value. Attributes never explicitly assigned
#: compare equal to ``nil``, as in OPS5.
NIL: str = "nil"


class WME:
    """One immutable working-memory element.

    WMEs hash and compare by identity-relevant content *plus* timestamp: two
    asserts of the same attribute values at different times are distinct
    elements (they can be individually removed), which is exactly OPS5's
    behaviour.

    ``__slots__`` keeps per-WME overhead low — benchmark working memories
    hold 10^5+ elements.
    """

    __slots__ = ("class_name", "_attrs", "_map", "timestamp", "_hash")

    def __init__(
        self,
        class_name: str,
        attrs: Mapping[str, Value],
        timestamp: int,
    ) -> None:
        self.class_name = class_name
        # Sort once so equal contents always produce the same tuple (and
        # hash) regardless of construction order; keep a dict for O(1) reads
        # on the match hot path.
        self._attrs: Tuple[Tuple[str, Value], ...] = tuple(sorted(attrs.items()))
        self._map: Dict[str, Value] = dict(self._attrs)
        self.timestamp = timestamp
        self._hash = hash((class_name, self._attrs, timestamp))

    # -- value access -------------------------------------------------------

    def get(self, attr: str) -> Value:
        """The attribute's value, or ``nil`` if never assigned."""
        return self._map.get(attr, NIL)

    def __getitem__(self, attr: str) -> Value:
        return self.get(attr)

    @property
    def attributes(self) -> Dict[str, Value]:
        """A fresh dict of the explicitly assigned attributes."""
        return dict(self._attrs)

    def items(self) -> Iterator[Tuple[str, Value]]:
        return iter(self._attrs)

    def with_updates(self, updates: Mapping[str, Value], timestamp: int) -> "WME":
        """A new WME with ``updates`` applied and a fresh timestamp —
        the primitive under the ``modify`` action."""
        merged = dict(self._attrs)
        merged.update(updates)
        return WME(self.class_name, merged, timestamp)

    # -- identity -------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, WME):
            return NotImplemented
        return (
            self.timestamp == other.timestamp
            and self.class_name == other.class_name
            and self._attrs == other._attrs
        )

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        inner = " ".join(f"^{k} {_format_value(val)}" for k, val in self._attrs)
        sep = " " if inner else ""
        return f"({self.class_name}{sep}{inner})@{self.timestamp}"

    def content_key(self) -> Tuple[str, Tuple[Tuple[str, Value], ...]]:
        """Timestamp-independent identity, used for duplicate detection in
        set-oriented firing (two firings making the same element)."""
        return (self.class_name, self._attrs)
