"""Working-memory persistence: dump and reload WMEs as facts text.

The format is the CLI's facts-file syntax — one ``(class ^attr value ...)``
form per element, in timestamp order::

    (edge ^src n0 ^dst n1)
    (dist ^node n0 ^cost 0)

Round trip: ``load_facts(dumps(wm))`` re-asserts equal *content* (fresh
timestamps — timestamps are engine-run state, not data). Used by the CLI's
``--dump-wm`` and handy for capturing benchmark states.
"""

from __future__ import annotations

from typing import Dict, List, Optional, TextIO, Tuple

from repro.errors import ParseError
from repro.lang.ast import Value, _format_value
from repro.lang.lexer import Token, TokenKind, tokenize
from repro.wm.memory import WorkingMemory
from repro.wm.wme import WME

__all__ = ["dumps", "dump", "parse_facts_text", "load_facts"]


def _format_wme(wme: WME) -> str:
    parts = [wme.class_name]
    for attr, value in wme.items():
        parts.append(f"^{attr} {_format_value(value)}")
    return f"({' '.join(parts)})"


def dumps(wm: WorkingMemory) -> str:
    """Serialize all live WMEs, one per line, in global timestamp order."""
    return "\n".join(_format_wme(w) for w in wm.snapshot()) + (
        "\n" if len(wm) else ""
    )


def dump(wm: WorkingMemory, fh: TextIO) -> None:
    """Write :func:`dumps` output to an open text file."""
    fh.write(dumps(wm))


def parse_facts_text(source: str) -> List[Tuple[str, Dict[str, Value]]]:
    """Parse facts text into ``(class, attrs)`` pairs.

    Accepts exactly what :func:`dumps` emits (plus comments/whitespace).
    """
    tokens = tokenize(source)
    pos = 0

    def current() -> Token:
        return tokens[pos]

    def advance() -> Token:
        nonlocal pos
        tok = tokens[pos]
        if tok.kind is not TokenKind.EOF:
            pos += 1
        return tok

    def expect(kind: TokenKind, what: str) -> Token:
        tok = current()
        if tok.kind is not kind:
            raise ParseError(
                f"facts: expected {what}, found {tok.value!r}", tok.line, tok.column
            )
        return advance()

    facts: List[Tuple[str, Dict[str, Value]]] = []
    while current().kind is not TokenKind.EOF:
        expect(TokenKind.LPAREN, "'('")
        cls = expect(TokenKind.SYMBOL, "class name")
        attrs: Dict[str, Value] = {}
        while current().kind is TokenKind.CARET:
            advance()
            attr = expect(TokenKind.SYMBOL, "attribute name")
            val = current()
            if val.kind not in (TokenKind.SYMBOL, TokenKind.NUMBER, TokenKind.STRING):
                raise ParseError(
                    f"facts: expected constant value, found {val.value!r}",
                    val.line,
                    val.column,
                )
            advance()
            attrs[str(attr.value)] = val.value
        expect(TokenKind.RPAREN, "')'")
        facts.append((str(cls.value), attrs))
    return facts


def load_facts(source: str, wm: Optional[WorkingMemory] = None) -> WorkingMemory:
    """Assert the facts in ``source`` into ``wm`` (or a fresh memory)."""
    target = wm if wm is not None else WorkingMemory()
    for class_name, attrs in parse_facts_text(source):
        target.make(class_name, attrs)
    return target
