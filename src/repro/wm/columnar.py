"""Columnar working memory on ``multiprocessing.shared_memory``.

:class:`ColumnarWorkingMemory` is a drop-in :class:`~repro.wm.memory.WorkingMemory`
whose authoritative storage is *struct-of-arrays*: per class, one shared
timestamp column, one liveness column, and one value column per attribute,
all living in named POSIX shared-memory segments owned by the parent
process. A small append-only **delta journal** (also a shared segment)
records every assert/retract as a fixed 16-byte ``(op, class, row)``
record.

Why: the process-parallel match backend used to ship pickled WM deltas to
every worker every cycle — at million-WME scale the priming delta alone is
tens of megabytes *per worker*. With the columnar store a worker
**attaches** the segments once (a name lookup + mmap), scans the liveness
column to build its replica, and thereafter refreshes from the shared
journal; the per-cycle pipe message shrinks to a few dozen bytes of
cursors (see ``benchmarks/wm_microbench.py`` for the measured ratio).

Layout (all names prefixed by the store's random token)::

    {tok}j{gen}            journal: 16-byte records ``<IIQ`` (op, class, row)
    {tok}h{gen}            heap: ``u32`` length-prefixed UTF-8 blobs
    {tok}c{cid}g{gen}t     class ``cid`` timestamps: ``int64[cap]``
    {tok}c{cid}g{gen}l     class ``cid`` liveness:   ``u8[cap]``
    {tok}c{cid}g{gen}a{i}  class ``cid`` attr column ``i``:
                           ``int64 payload[cap]`` then ``u8 tag[cap]``

Value slots are a tag byte plus a 64-bit payload: ints inline (arbitrary
precision overflows to the heap as decimal text), floats as IEEE-754 bit
patterns, symbols as heap offsets (interned once per distinct string —
equality probes compare offsets for free). Tag 0 means *absent*, so a
freshly zeroed column reads as "attribute never assigned", which is what
lets new attribute columns appear mid-run without rewriting old rows.

Design rules that keep cross-process readers trivial:

- **Rows are append-only.** A retract flips liveness to 0; the row's
  content is never reused. Journal records therefore stay valid for
  lagging readers and respawned workers forever.
- **Growth is re-generation.** When a class (or the heap, or the journal)
  outgrows its segment, the parent allocates a doubled segment under the
  next generation name, copies, and unlinks the old name. Attached readers
  keep their (still-mapped) old generation until the next cycle message
  tells them the new generation; they then re-attach by name. Unlink only
  removes the name — existing mappings stay readable.
- **The parent is the only writer**, and engines never mutate working
  memory while a match is in flight, so readers need no locks: every
  refresh happens against a quiescent store, bounded by the explicit
  ``(journal length, heap length)`` cursors in the cycle message.
- **Crash cleanup** is layered: ``close()`` unlinks everything; a
  ``weakref.finalize`` guard (pid-checked, so forked workers cannot
  destroy the parent's segments) unlinks on garbage collection or
  interpreter exit; and if the process dies uncleanly, the stdlib
  ``resource_tracker`` unlinks the leaked names. As the last layer, the
  store's token embeds the owner pid (``pwm<pid:08x>p<random>``), so the
  shm janitor (:mod:`repro.resilience.janitor` — run by
  ``scripts/check.sh`` and ``parulel janitor``) can reclaim segments
  whose owner died by SIGKILL without touching live ones.

The dict-backed parent index (class buckets of live WME objects) is kept
alongside the columns: the parent needs real :class:`~repro.wm.wme.WME`
objects for listeners, conflict sets and queries anyway, so queries,
listener semantics, timestamp allocation and ``dump_records()`` round-trips
are *byte-identical* to the dict store by construction — the property suite
in ``tests/wm/test_columnar.py`` asserts it operation by operation.
"""

from __future__ import annotations

import os
import secrets
import struct
import weakref
from multiprocessing import shared_memory
from typing import Callable, Dict, List, Optional, Tuple

from repro.errors import WorkingMemoryError
from repro.lang.ast import Value
from repro.wm.memory import WorkingMemory
from repro.wm.template import TemplateRegistry
from repro.wm.wme import NIL, WME

__all__ = [
    "ColumnarWorkingMemory",
    "ColumnarReader",
    "SEGMENT_PREFIX",
    "parse_owner_pid",
]

#: Every segment name starts with this; the resilience janitor (and the
#: check.sh gate) sweeps leaked ones whose owner is gone.
SEGMENT_PREFIX = "pwm"


def parse_owner_pid(name: str, prefix: str = SEGMENT_PREFIX) -> Optional[int]:
    """The owner pid embedded in a segment name, or ``None`` for legacy /
    foreign names. New-format tokens are ``<prefix><pid:08x>p<random hex>``;
    the literal ``p`` separator cannot collide with legacy names, whose
    9th body character is a segment-kind letter (``j``/``h``/``c``)."""
    if not name.startswith(prefix):
        return None
    body = name[len(prefix):]
    if len(body) < 9 or body[8] != "p":
        return None
    try:
        return int(body[:8], 16)
    except ValueError:
        return None

# -- value slot encoding ------------------------------------------------------

_ABSENT, _INT, _FLOAT, _SYM, _BIG, _BOOL = 0, 1, 2, 3, 4, 5
_I64_MIN, _I64_MAX = -(1 << 63), (1 << 63) - 1

#: Journal record: op (0=add, 1=remove), class id, row index.
_JREC = struct.Struct("<IIQ")
JOURNAL_RECORD_SIZE = _JREC.size  # 16

_OP_ADD, _OP_REMOVE = 0, 1

#: Initial capacities (rows / bytes); every exhaustion doubles.
_INITIAL_ROWS = 1024
_INITIAL_HEAP = 1 << 16
_INITIAL_JOURNAL_RECORDS = 4096


class _Seg:
    """One shared-memory segment plus the memoryviews carved from it.

    Tracks derived views so :meth:`close` can release them first —
    ``mmap.close`` refuses while exported views are alive.
    """

    __slots__ = ("shm", "_views")

    def __init__(self, name: str, size: int = 0, create: bool = False) -> None:
        if create:
            self.shm = shared_memory.SharedMemory(name=name, create=True, size=size)
        else:
            self.shm = shared_memory.SharedMemory(name=name)
        self._views: List[memoryview] = []

    @property
    def name(self) -> str:
        return self.shm.name

    @property
    def buf(self) -> memoryview:
        return self.shm.buf

    def view(self, start: int, stop: int, fmt: Optional[str] = None) -> memoryview:
        mv = self.shm.buf[start:stop]
        if fmt is not None:
            mv = mv.cast(fmt)
        self._views.append(mv)
        return mv

    def close(self) -> None:
        for mv in self._views:
            mv.release()
        self._views.clear()
        self.shm.close()

    def unlink(self) -> None:
        try:
            self.shm.unlink()
        except FileNotFoundError:
            # Already swept externally (janitor, chaos fault). The stdlib
            # only unregisters after a successful shm_unlink, so drop the
            # stale tracker entry ourselves or the resource tracker warns
            # (and re-unlinks the missing name) at interpreter exit.
            try:
                from multiprocessing import resource_tracker

                resource_tracker.unregister(self.shm._name, "shared_memory")
            except Exception:  # noqa: BLE001 - cleanup must never raise
                pass


def _encode_value(intern: Callable[[str], int], val: Value) -> Tuple[int, int]:
    """``(tag, int64 payload)`` for one attribute value."""
    if isinstance(val, bool):  # before int: bool is an int subclass
        return _BOOL, int(val)
    if isinstance(val, int):
        if _I64_MIN <= val <= _I64_MAX:
            return _INT, val
        return _BIG, intern(str(val))
    if isinstance(val, float):
        return _FLOAT, struct.unpack("<q", struct.pack("<d", val))[0]
    if isinstance(val, str):
        return _SYM, intern(val)
    raise WorkingMemoryError(
        f"columnar store cannot encode attribute value {val!r} "
        f"(symbols, ints and floats only)"
    )


def _decode_value(resolve: Callable[[int], str], tag: int, payload: int) -> Value:
    if tag == _INT:
        return payload
    if tag == _SYM:
        return resolve(payload)
    if tag == _FLOAT:
        return struct.unpack("<d", struct.pack("<q", payload))[0]
    if tag == _BOOL:
        return bool(payload)
    if tag == _BIG:
        return int(resolve(payload))
    raise WorkingMemoryError(f"corrupt column slot: tag {tag}")


def _cleanup_segments(owner_pid: int, segs: Dict[str, _Seg]) -> None:
    """Finalizer: unlink every still-live segment — but only in the process
    that created them (a forked worker inherits the finalizer and must NOT
    tear the parent's store down when it exits)."""
    if os.getpid() != owner_pid:
        return
    for seg in segs.values():
        try:
            seg.close()
        except Exception:  # pragma: no cover - teardown best-effort
            pass
        seg.unlink()
    segs.clear()


# -- parent-side tables -------------------------------------------------------


class _ColumnTable:
    """Parent-side writer for one class's columns."""

    __slots__ = (
        "store", "cid", "name", "gen", "cap", "rows",
        "attr_order", "seg_t", "seg_l", "seg_cols",
        "ts_col", "live_col", "payload_cols", "tag_cols", "row_by_ts",
    )

    def __init__(self, store: "ColumnarWorkingMemory", cid: int, name: str) -> None:
        self.store = store
        self.cid = cid
        self.name = name
        self.gen = 0
        self.cap = store.initial_capacity
        self.rows = 0
        #: Attribute names in column order (column i ↔ attr_order[i]).
        self.attr_order: List[str] = []
        self.seg_cols: List[_Seg] = []
        self.payload_cols: List[memoryview] = []
        self.tag_cols: List[memoryview] = []
        #: Live timestamp -> row, for O(1) retract.
        self.row_by_ts: Dict[int, int] = {}
        self.seg_t, self.ts_col = self._new_ts_seg(self.gen, self.cap)
        self.seg_l, self.live_col = self._new_live_seg(self.gen, self.cap)

    # segment builders ------------------------------------------------------

    def _seg_name(self, gen: int, suffix: str) -> str:
        return f"{self.store.token}c{self.cid}g{gen}{suffix}"

    def _new_ts_seg(self, gen: int, cap: int) -> Tuple[_Seg, memoryview]:
        seg = self.store._create_seg(self._seg_name(gen, "t"), cap * 8)
        return seg, seg.view(0, cap * 8, "q")

    def _new_live_seg(self, gen: int, cap: int) -> Tuple[_Seg, memoryview]:
        seg = self.store._create_seg(self._seg_name(gen, "l"), cap)
        return seg, seg.view(0, cap)

    def _new_attr_seg(
        self, gen: int, cap: int, idx: int
    ) -> Tuple[_Seg, memoryview, memoryview]:
        seg = self.store._create_seg(self._seg_name(gen, f"a{idx}"), cap * 9)
        return seg, seg.view(0, cap * 8, "q"), seg.view(cap * 8, cap * 9)

    # writes ----------------------------------------------------------------

    def add_column(self, attr: str) -> int:
        idx = len(self.attr_order)
        self.attr_order.append(attr)
        seg, payload, tags = self._new_attr_seg(self.gen, self.cap, idx)
        self.seg_cols.append(seg)
        self.payload_cols.append(payload)
        self.tag_cols.append(tags)
        self.store._mark_dirty(self.cid)
        return idx

    def grow(self) -> None:
        """Double capacity under the next generation; copy, unlink old."""
        old_gen, old_cap = self.gen, self.cap
        self.gen += 1
        self.cap = old_cap * 2

        seg_t, ts_col = self._new_ts_seg(self.gen, self.cap)
        seg_t.buf[: old_cap * 8] = self.seg_t.buf[: old_cap * 8]
        seg_l, live_col = self._new_live_seg(self.gen, self.cap)
        seg_l.buf[:old_cap] = self.seg_l.buf[:old_cap]
        new_cols: List[Tuple[_Seg, memoryview, memoryview]] = []
        for idx, old_seg in enumerate(self.seg_cols):
            seg, payload, tags = self._new_attr_seg(self.gen, self.cap, idx)
            seg.buf[: old_cap * 8] = old_seg.buf[: old_cap * 8]
            tag_off = self.cap * 8
            seg.buf[tag_off : tag_off + old_cap] = old_seg.buf[
                old_cap * 8 : old_cap * 9
            ]
            new_cols.append((seg, payload, tags))

        self.store._drop_seg(self.seg_t)
        self.store._drop_seg(self.seg_l)
        for old_seg in self.seg_cols:
            self.store._drop_seg(old_seg)
        self.seg_t, self.ts_col = seg_t, ts_col
        self.seg_l, self.live_col = seg_l, live_col
        self.seg_cols = [seg for seg, _, _ in new_cols]
        self.payload_cols = [p for _, p, _ in new_cols]
        self.tag_cols = [t for _, _, t in new_cols]
        self.store._mark_dirty(self.cid)
        del old_gen  # name unlinked above; nothing else references it

    def append(self, wme: WME) -> int:
        if self.rows == self.cap:
            self.grow()
        row = self.rows
        self.rows = row + 1
        self.ts_col[row] = wme.timestamp
        self.live_col[row] = 1
        col_of = {a: i for i, a in enumerate(self.attr_order)}
        intern = self.store._intern
        for attr, val in wme.items():
            idx = col_of.get(attr)
            if idx is None:
                idx = self.add_column(attr)
            tag, payload = _encode_value(intern, val)
            self.payload_cols[idx][row] = payload
            self.tag_cols[idx][row] = tag
        self.row_by_ts[wme.timestamp] = row
        return row

    def retract(self, timestamp: int) -> int:
        row = self.row_by_ts.pop(timestamp)
        self.live_col[row] = 0
        return row

    def spec(self) -> Tuple:
        """Structural record shipped to readers:
        ``(cid, name, gen, cap, attrs, rows)``."""
        return (
            self.cid,
            self.name,
            self.gen,
            self.cap,
            tuple(self.attr_order),
            self.rows,
        )


class ColumnarWorkingMemory(WorkingMemory):
    """The :class:`WorkingMemory` API over shared columnar pages.

    Observably identical to the dict store (same listeners, timestamps,
    iteration order, ``dump_records`` bytes); additionally exposes the
    shared-attach protocol the process match pool uses:

    - :meth:`attach_spec` — full structural snapshot for a (re)spawned
      worker's :class:`ColumnarReader`;
    - :meth:`cycle_info` — per-cycle cursors plus the structural records
      that changed since the last call (usually none).
    """

    is_shared = True

    def __init__(
        self,
        templates: Optional[TemplateRegistry] = None,
        initial_capacity: int = _INITIAL_ROWS,
    ) -> None:
        super().__init__(templates)
        if initial_capacity < 1:
            raise WorkingMemoryError("initial_capacity must be >= 1")
        self.initial_capacity = initial_capacity
        # The owner pid rides in the token so the shm janitor can prove a
        # segment orphaned (owner dead) without a /proc-wide maps scan.
        self.token = (
            f"{SEGMENT_PREFIX}{os.getpid() & 0xFFFFFFFF:08x}p{secrets.token_hex(4)}"
        )
        self._segs: Dict[str, _Seg] = {}
        self._owner_pid = os.getpid()
        self._finalizer = weakref.finalize(
            self, _cleanup_segments, self._owner_pid, self._segs
        )
        self._tables: Dict[str, _ColumnTable] = {}
        self._tables_by_id: List[_ColumnTable] = []
        self._dirty: Dict[int, None] = {}  # ordered set of dirty class ids

        # String heap (interned symbols / big ints).
        self._heap_gen = 0
        self._heap_cap = _INITIAL_HEAP
        self._heap_used = 0
        self._heap_seg = self._create_seg(
            f"{self.token}h{self._heap_gen}", self._heap_cap
        )
        self._interned: Dict[str, int] = {}

        # Delta journal.
        self._journal_gen = 0
        self._journal_cap = _INITIAL_JOURNAL_RECORDS
        self._journal_len = 0
        self._journal_seg = self._create_seg(
            f"{self.token}j{self._journal_gen}",
            self._journal_cap * JOURNAL_RECORD_SIZE,
        )
        self._closed = False

    # -- segment bookkeeping -------------------------------------------------

    def _create_seg(self, name: str, size: int) -> _Seg:
        seg = _Seg(name, size=size, create=True)
        self._segs[name] = seg
        return seg

    def _drop_seg(self, seg: _Seg) -> None:
        self._segs.pop(seg.name, None)
        seg.close()
        seg.unlink()

    def _mark_dirty(self, cid: int) -> None:
        self._dirty[cid] = None

    # -- heap ----------------------------------------------------------------

    def _intern(self, text: str) -> int:
        off = self._interned.get(text)
        if off is not None:
            return off
        raw = text.encode("utf-8")
        need = 4 + len(raw)
        while self._heap_used + need > self._heap_cap:
            self._grow_heap(need)
        off = self._heap_used
        buf = self._heap_seg.buf
        struct.pack_into("<I", buf, off, len(raw))
        buf[off + 4 : off + 4 + len(raw)] = raw
        self._heap_used = off + need
        self._interned[text] = off
        return off

    def _grow_heap(self, need: int) -> None:
        new_cap = self._heap_cap * 2
        while new_cap < self._heap_used + need:
            new_cap *= 2
        self._heap_gen += 1
        new_seg = self._create_seg(f"{self.token}h{self._heap_gen}", new_cap)
        new_seg.buf[: self._heap_used] = self._heap_seg.buf[: self._heap_used]
        self._drop_seg(self._heap_seg)
        self._heap_seg = new_seg
        self._heap_cap = new_cap

    # -- journal -------------------------------------------------------------

    def _journal_append(self, op: int, cid: int, row: int) -> None:
        if self._journal_len == self._journal_cap:
            self._grow_journal()
        _JREC.pack_into(
            self._journal_seg.buf,
            self._journal_len * JOURNAL_RECORD_SIZE,
            op,
            cid,
            row,
        )
        self._journal_len += 1

    def _grow_journal(self) -> None:
        new_cap = self._journal_cap * 2
        self._journal_gen += 1
        new_seg = self._create_seg(
            f"{self.token}j{self._journal_gen}", new_cap * JOURNAL_RECORD_SIZE
        )
        used = self._journal_len * JOURNAL_RECORD_SIZE
        new_seg.buf[:used] = self._journal_seg.buf[:used]
        self._drop_seg(self._journal_seg)
        self._journal_seg = new_seg
        self._journal_cap = new_cap

    # -- WorkingMemory overrides ---------------------------------------------

    def _table(self, class_name: str) -> _ColumnTable:
        table = self._tables.get(class_name)
        if table is None:
            cid = len(self._tables_by_id)
            table = _ColumnTable(self, cid, class_name)
            self._tables[class_name] = table
            self._tables_by_id.append(table)
            self._mark_dirty(cid)
        return table

    def _insert(self, wme: WME) -> None:
        # Duplicate detection happens in super()._insert; probe first so a
        # rejected insert leaves no orphan row behind.
        bucket = self._by_class.get(wme.class_name)
        if bucket is not None and wme in bucket:
            raise WorkingMemoryError(f"duplicate WME {wme!r}")
        table = self._table(wme.class_name)
        row = table.append(wme)
        self._journal_append(_OP_ADD, table.cid, row)
        super()._insert(wme)

    def remove(self, wme: WME) -> None:
        bucket = self._by_class.get(wme.class_name)
        if bucket is None or wme not in bucket:
            raise WorkingMemoryError(f"cannot remove absent WME {wme!r}")
        table = self._tables[wme.class_name]
        row = table.retract(wme.timestamp)
        self._journal_append(_OP_REMOVE, table.cid, row)
        super().remove(wme)

    def discard(self, wme: WME) -> bool:
        bucket = self._by_class.get(wme.class_name)
        if bucket is None or wme not in bucket:
            return False
        table = self._tables[wme.class_name]
        row = table.retract(wme.timestamp)
        self._journal_append(_OP_REMOVE, table.cid, row)
        return super().discard(wme)

    def bulk_load(self, wmes) -> None:
        # Every assert must hit the columns and the journal; the dict
        # store's bucket-update fast path would bypass both.
        for wme in wmes:
            self.add(wme)

    def clear_class(self, class_name: str) -> int:
        bucket = self._by_class.get(class_name)
        if bucket:
            table = self._tables[class_name]
            for wme in bucket:
                row = table.retract(wme.timestamp)
                self._journal_append(_OP_REMOVE, table.cid, row)
        return super().clear_class(class_name)

    # -- shared-attach protocol ----------------------------------------------

    def attach_spec(self) -> Tuple:
        """Complete structural snapshot: everything a fresh reader needs to
        attach and build a replica, including the journal cursor to resume
        from. Must be taken while the store is quiescent (the match phase)."""
        return (
            self.token,
            (self._journal_gen, self._journal_len),
            (self._heap_gen, self._heap_used),
            tuple(table.spec() for table in self._tables_by_id),
        )

    def cycle_info(self) -> Tuple:
        """Per-cycle refresh cursors plus drained structural changes:
        ``((jgen, jlen), (hgen, hused), changed-class specs)``. A few dozen
        bytes in steady state — the whole point of the columnar store."""
        dirty = tuple(self._tables_by_id[cid].spec() for cid in self._dirty)
        self._dirty.clear()
        return (
            (self._journal_gen, self._journal_len),
            (self._heap_gen, self._heap_used),
            dirty,
        )

    def refresh_info(self) -> Tuple:
        """Like :meth:`cycle_info` but without draining structural changes —
        for catching up a worker that just attached via a full
        :meth:`attach_spec` (the spec already carries all structure)."""
        return (
            (self._journal_gen, self._journal_len),
            (self._heap_gen, self._heap_used),
            (),
        )

    @property
    def journal_len(self) -> int:
        return self._journal_len

    @property
    def segment_names(self) -> Tuple[str, ...]:
        """Live segment names (tests and leak checks)."""
        return tuple(self._segs)

    @property
    def shared_bytes(self) -> int:
        """Total bytes currently allocated in shared segments."""
        return sum(seg.shm.size for seg in self._segs.values())

    # -- lifecycle -----------------------------------------------------------

    def close(self) -> None:
        """Release and unlink every shared segment (idempotent). Only the
        owning process may close; forked children inherit the object but
        their ``close`` is a no-op."""
        if self._closed or os.getpid() != self._owner_pid:
            return
        self._closed = True
        self._finalizer.detach()
        for table in self._tables_by_id:
            table.ts_col = table.live_col = None  # drop cast views
            table.payload_cols = []
            table.tag_cols = []
        for seg in list(self._segs.values()):
            seg.close()
            seg.unlink()
        self._segs.clear()


# -- worker-side reader -------------------------------------------------------


class _ReaderTable:
    """Worker-side view of one class's columns."""

    __slots__ = (
        "token", "cid", "name", "gen", "cap", "attr_order",
        "segs", "ts_col", "live_col", "payload_cols", "tag_cols",
        "wme_by_row", "rows_known", "_col_of",
    )

    def __init__(self, token: str, spec: Tuple) -> None:
        self.token = token
        self.segs: List[_Seg] = []
        self.wme_by_row: Dict[int, WME] = {}
        #: Row high-water mark as of the last structural spec / journal
        #: record seen — the range a column scan may read without racing
        #: past the parent's cursors.
        self.rows_known = 0
        self._mount(spec)

    def _mount(self, spec: Tuple) -> None:
        cid, name, gen, cap, attrs, rows = spec
        self.cid, self.name, self.gen, self.cap = cid, name, gen, cap
        self.attr_order = list(attrs)
        self._col_of = {a: i for i, a in enumerate(attrs)}
        if rows > self.rows_known:
            self.rows_known = rows
        base = f"{self.token}c{cid}g{gen}"
        # Mount all-or-nothing: close whatever mapped if a later segment
        # is gone (unlinked mid-run), so no exported views leak. self.segs
        # is only replaced on success (refresh_structure keeps the old
        # mounts when a re-mount fails).
        opened: List[_Seg] = []
        payload_cols: List = []
        tag_cols: List = []
        try:
            seg_t = _Seg(f"{base}t")
            opened.append(seg_t)
            seg_l = _Seg(f"{base}l")
            opened.append(seg_l)
            ts_col = seg_t.view(0, cap * 8, "q")
            live_col = seg_l.view(0, cap)
            for idx in range(len(self.attr_order)):
                seg = _Seg(f"{base}a{idx}")
                opened.append(seg)
                payload_cols.append(seg.view(0, cap * 8, "q"))
                tag_cols.append(seg.view(cap * 8, cap * 9))
        except Exception:
            for seg in opened:
                seg.close()
            raise
        self.ts_col = ts_col
        self.live_col = live_col
        self.payload_cols = payload_cols
        self.tag_cols = tag_cols
        self.segs = opened

    def refresh_structure(self, spec: Tuple) -> None:
        """Re-attach after growth or new columns (row→WME map survives)."""
        _cid, _name, gen, cap, attrs, _rows = spec
        if gen == self.gen and len(attrs) == len(self.attr_order):
            return
        old_segs = self.segs
        self._mount(spec)
        for seg in old_segs:
            seg.close()

    def materialize(self, resolve: Callable[[int], str], row: int) -> WME:
        attrs: Dict[str, Value] = {}
        for idx, attr in enumerate(self.attr_order):
            tag = self.tag_cols[idx][row]
            if tag == _ABSENT:
                continue
            attrs[attr] = _decode_value(resolve, tag, self.payload_cols[idx][row])
        return WME(self.name, attrs, self.ts_col[row])

    def col_of(self, attr: str) -> Optional[int]:
        """Column index of ``attr``, or ``None`` when no row ever set it
        (reads as absent). Resolved at call time — columns can appear
        mid-run."""
        return self._col_of.get(attr)

    def cell(self, resolve: Callable[[int], str], row: int, attr: str) -> Value:
        """Decode one attribute of one row without building the WME
        (``"nil"`` for absent — the same reading ``WME.get`` gives)."""
        idx = self._col_of.get(attr)
        if idx is None:
            return NIL
        tag = self.tag_cols[idx][row]
        if tag == _ABSENT:
            return NIL
        return _decode_value(resolve, tag, self.payload_cols[idx][row])

    def close(self) -> None:
        for seg in self.segs:
            seg.close()
        self.segs = []


class ColumnarReader:
    """A worker's attachment to a :class:`ColumnarWorkingMemory`.

    ``attach()`` scans the liveness columns and materializes every live WME
    (per class, in row = timestamp order — exactly the bucket order a
    delta-built replica would have). ``refresh()`` advances over the shared
    journal to the cursors in the parent's cycle message. Both invoke the
    supplied callbacks so the caller can feed its replica store/alpha
    caches; the reader keeps the row→WME maps needed to resolve retracts.
    """

    def __init__(self, spec: Tuple) -> None:
        token, journal, heap, class_specs = spec
        self.token = token
        self._journal_gen, self._cursor = journal
        self._heap_gen, self._heap_used = heap
        self._class_specs = class_specs
        self._strings: Dict[int, str] = {}
        #: Reverse intern map (text -> heap offset), filled by the
        #: incremental heap walk. Heap offsets are stable across heap
        #: generations (growth copies the used prefix verbatim), so the
        #: walk cursor and both maps survive re-generation.
        self._offsets: Dict[str, int] = {}
        self._heap_walked = 0
        self._nil_off: Optional[int] = None
        self._tables: Dict[int, _ReaderTable] = {}
        self._cid_by_name: Dict[str, int] = {
            cspec[1]: cspec[0] for cspec in class_specs
        }
        # Attach all-or-nothing: if any segment is gone (e.g. unlinked by
        # a fault mid-run), release whatever did map before re-raising —
        # a half-attached reader abandoned un-closed would leak exported
        # views into interpreter shutdown.
        self._heap_seg = _Seg(f"{token}h{self._heap_gen}")
        try:
            self._journal_seg = _Seg(f"{token}j{self._journal_gen}")
            try:
                for cspec in class_specs:
                    self._tables[cspec[0]] = _ReaderTable(token, cspec)
            except Exception:
                for table in self._tables.values():
                    table.close()
                self._journal_seg.close()
                raise
        except Exception:
            self._heap_seg.close()
            raise

    # -- heap ----------------------------------------------------------------

    def _resolve(self, off: int) -> str:
        text = self._strings.get(off)
        if text is None:
            buf = self._heap_seg.buf
            (length,) = struct.unpack_from("<I", buf, off)
            text = bytes(buf[off + 4 : off + 4 + length]).decode("utf-8")
            self._strings[off] = text
        return text

    def ensure_interned(self) -> None:
        """Walk the heap suffix appended since the last walk, filling both
        the forward (offset -> text) and reverse (text -> offset) maps.

        The heap is append-only and offsets never move across generations,
        so a single sequential cursor covers it; the walk is O(new bytes)
        and a no-op in steady state.
        """
        off, used = self._heap_walked, self._heap_used
        if off >= used:
            return
        buf = self._heap_seg.buf
        strings, offsets = self._strings, self._offsets
        while off < used:
            (length,) = struct.unpack_from("<I", buf, off)
            text = bytes(buf[off + 4 : off + 4 + length]).decode("utf-8")
            strings[off] = text
            offsets[text] = off
            off += 4 + length
        self._heap_walked = off
        self._nil_off = offsets.get(NIL)

    def offset_of(self, text: str) -> Optional[int]:
        """Heap offset of an interned string, or ``None`` if the parent
        never interned it — which proves no stored symbol/bigint equals
        it (the definitive-miss half of the packed-probe protocol)."""
        self.ensure_interned()
        return self._offsets.get(text)

    def nil_offset(self) -> Optional[int]:
        """Offset of the interned ``"nil"`` symbol, if any — stored
        ``nil`` symbols and absent slots must canonicalize to one key."""
        self.ensure_interned()
        return self._nil_off

    # -- structure -----------------------------------------------------------

    def table(self, cid: int) -> Optional[_ReaderTable]:
        return self._tables.get(cid)

    def cid_of(self, class_name: str) -> Optional[int]:
        return self._cid_by_name.get(class_name)

    def _refresh_structure(self, info: Tuple) -> Tuple[int, int]:
        """Shared refresh prologue: re-mount the heap/journal/tables the
        cursors and dirty specs call for. Returns ``(journal stop, start)``
        for the caller's record loop."""
        (jgen, jlen), (hgen, hused), dirty = info
        if hgen != self._heap_gen:
            self._heap_seg.close()
            self._heap_seg = _Seg(f"{self.token}h{hgen}")
            self._heap_gen = hgen
            self._strings.clear()
        self._heap_used = hused
        for cspec in dirty:
            cid = cspec[0]
            table = self._tables.get(cid)
            if table is None:
                self._tables[cid] = _ReaderTable(self.token, cspec)
                self._cid_by_name[cspec[1]] = cid
            else:
                table.refresh_structure(cspec)
                if cspec[5] > table.rows_known:
                    table.rows_known = cspec[5]
        if jgen != self._journal_gen:
            self._journal_seg.close()
            self._journal_seg = _Seg(f"{self.token}j{jgen}")
            self._journal_gen = jgen
        start, self._cursor = self._cursor, jlen
        return jlen, start

    # -- protocol ------------------------------------------------------------

    def attach(self, on_add: Callable[[WME], None]) -> int:
        """Build the replica from the liveness snapshot; returns the number
        of WMEs materialized. Skips dead rows entirely — cheaper than a
        journal replay over a churned history."""
        n = 0
        resolve = self._resolve
        for cspec in self._class_specs:
            table = self._tables[cspec[0]]
            rows = cspec[5]
            live = table.live_col
            for row in range(rows):
                if live[row]:
                    wme = table.materialize(resolve, row)
                    table.wme_by_row[row] = wme
                    on_add(wme)
                    n += 1
        return n

    def attach_bulk(
        self, on_class: Callable[[str, List[WME]], None]
    ) -> int:
        """Like :meth:`attach`, but delivers each class's live WMEs as one
        batch (row = timestamp order) — one callback per class instead of
        one per WME, so the caller can route the batch through bulk loads
        (:meth:`~repro.wm.memory.WorkingMemory.bulk_load`,
        :meth:`~repro.match.alphaindex.IndexedMemory.bulk_add`)."""
        n = 0
        resolve = self._resolve
        for cspec in self._class_specs:
            table = self._tables[cspec[0]]
            rows = cspec[5]
            live = table.live_col
            batch: List[WME] = []
            wme_by_row = table.wme_by_row
            for row in range(rows):
                if live[row]:
                    wme = table.materialize(resolve, row)
                    wme_by_row[row] = wme
                    batch.append(wme)
            if batch:
                on_class(table.name, batch)
                n += len(batch)
        return n

    def refresh(
        self,
        info: Tuple,
        on_add: Callable[[WME], None],
        on_remove: Callable[[WME], None],
    ) -> int:
        """Apply journal records up to the message's cursors; returns the
        number of records applied."""
        jlen, start = self._refresh_structure(info)
        applied = 0
        buf = self._journal_seg.buf
        resolve = self._resolve
        for i in range(start, jlen):
            op, cid, row = _JREC.unpack_from(buf, i * JOURNAL_RECORD_SIZE)
            table = self._tables[cid]
            if op == _OP_ADD:
                wme = table.materialize(resolve, row)
                table.wme_by_row[row] = wme
                on_add(wme)
            else:
                wme = table.wme_by_row.pop(row)
                on_remove(wme)
            applied += 1
        return applied

    def refresh_raw(
        self,
        info: Tuple,
        on_record: Callable[[bool, int, int], None],
    ) -> int:
        """Advance over the journal *without materializing anything*:
        ``on_record(added, cid, row)`` per record, row high-water marks
        updated. The vectorized probe path refreshes through this — WME
        construction is deferred until a probe actually needs the row
        (:class:`~repro.match.alphaindex.ColumnVectorCache`)."""
        jlen, start = self._refresh_structure(info)
        applied = 0
        buf = self._journal_seg.buf
        tables = self._tables
        for i in range(start, jlen):
            op, cid, row = _JREC.unpack_from(buf, i * JOURNAL_RECORD_SIZE)
            if op == _OP_ADD:
                table = tables[cid]
                if row >= table.rows_known:
                    table.rows_known = row + 1
            on_record(op == _OP_ADD, cid, row)
            applied += 1
        return applied

    @property
    def cursor(self) -> int:
        return self._cursor

    def close(self) -> None:
        for table in self._tables.values():
            table.close()
        self._tables.clear()
        self._heap_seg.close()
        self._journal_seg.close()
