"""repro — a reproduction of "The PARULEL Parallel Rule Language"
(Stolfo et al., Proc. 1991 Intl. Conf. on Parallel Processing).

PARULEL is a parallel production-system language in the OPS5 lineage whose
cycle fires **all** surviving conflict-set instantiations at once, with
conflict resolution programmed as **meta-rules** that *redact* (delete)
instantiations, and whose match phase parallelizes across processors (rule
parallelism and copy-and-constrain data parallelism).

Quick start::

    from repro import ParulelEngine, parse_program

    src = '''
    (literalize count value)
    (p bump
        (count ^value {<v> < 5})
        -->
        (modify 1 ^value (compute <v> + 1)))
    '''
    engine = ParulelEngine(parse_program(src))
    engine.make("count", value=0)
    result = engine.run()
    assert engine.wm.find("count", value=5)

Package map:

- :mod:`repro.lang` — lexer, parser, AST, analysis, pretty-printer, builder
- :mod:`repro.wm` — working memory
- :mod:`repro.match` — RETE / TREAT / naive match engines
- :mod:`repro.core` — the PARULEL set-oriented engine and meta level
- :mod:`repro.baseline` — the sequential OPS5 engine (LEX/MEA)
- :mod:`repro.parallel` — simulated multiprocessor, partitioners,
  copy-and-constrain, threaded executor
- :mod:`repro.faults` — seeded fault plans, injection, and the structured
  fault/recovery event records
- :mod:`repro.programs` — benchmark program generators
- :mod:`repro.metrics` — reporting helpers for the experiment suite
"""

from repro.baseline import OPS5Engine, OPS5Result
from repro.core import (
    CycleReport,
    EngineConfig,
    InterferencePolicy,
    ParulelEngine,
    RunResult,
)
from repro.errors import (
    CycleLimitExceeded,
    ExecutionError,
    InterferenceError,
    LexError,
    MatchError,
    ParseError,
    ReproError,
    SemanticError,
    WorkingMemoryError,
)
from repro.faults import FaultEvent, FaultPlan
from repro.lang import (
    Program,
    ProgramBuilder,
    RuleBuilder,
    analyze_program,
    format_program,
    parse_program,
)
from repro.match import (
    Instantiation,
    NaiveMatcher,
    ReteMatcher,
    TreatMatcher,
    create_matcher,
)
from repro.wm import WME, WorkingMemory

__version__ = "1.0.0"

__all__ = [
    "CycleLimitExceeded",
    "CycleReport",
    "EngineConfig",
    "ExecutionError",
    "FaultEvent",
    "FaultPlan",
    "Instantiation",
    "InterferenceError",
    "InterferencePolicy",
    "LexError",
    "MatchError",
    "NaiveMatcher",
    "OPS5Engine",
    "OPS5Result",
    "ParseError",
    "ParulelEngine",
    "Program",
    "ProgramBuilder",
    "ReproError",
    "ReteMatcher",
    "RuleBuilder",
    "RunResult",
    "SemanticError",
    "TreatMatcher",
    "WME",
    "WorkingMemory",
    "WorkingMemoryError",
    "analyze_program",
    "create_matcher",
    "format_program",
    "parse_program",
    "__version__",
]
