"""Structured records of faults and recovery actions.

Every fault the :mod:`repro.faults` subsystem injects — and every recovery
action an execution substrate takes in response — is recorded as a
:class:`FaultEvent`. The distributed machine surfaces them on
:class:`~repro.parallel.distributed.DistResult`, the process pool exposes
them via ``drain_fault_events()`` so the engine can attach them to the
cycle's :class:`~repro.core.engine.CycleReport`, and the fault benchmark
(fig. 6) aggregates them with :func:`summarize_faults`.

Event kinds are flat strings rather than an enum so substrates can add
their own without a central registry; the well-known ones are listed in
:data:`KNOWN_KINDS`.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Iterable, Optional

__all__ = ["FaultEvent", "KNOWN_KINDS", "summarize_faults"]

#: Event kinds emitted by the bundled substrates. Injected faults:
#: ``crash`` (site death), ``kill``/``wedge`` (process worker SIGKILL /
#: SIGSTOP), ``drop``/``duplicate``/``delay`` (message faults),
#: ``straggler`` (slow site). Recovery actions: ``detect`` (missed
#: gather), ``redistribute`` (rules re-hosted on survivors), ``rejoin``
#: (replica rebuilt from the delta log), ``respawn`` (worker replaced),
#: ``degrade`` (site demoted one rung down the degradation ladder).
#: Supervision events (:mod:`repro.resilience.supervisor`): ``backoff``
#: (seeded exponential delay before a respawn), ``heartbeat-miss`` (a
#: liveness probe went unanswered), ``worker-error`` (a worker reply was
#: an error and the policy degrades instead of raising),
#: ``breaker-open``/``breaker-close`` (per-site circuit breaker), and
#: ``promote`` (site re-promoted a rung up after cool-down).
KNOWN_KINDS = (
    "crash",
    "kill",
    "wedge",
    "drop",
    "duplicate",
    "delay",
    "straggler",
    "detect",
    "redistribute",
    "rejoin",
    "respawn",
    "degrade",
    "backoff",
    "heartbeat-miss",
    "worker-error",
    "breaker-open",
    "breaker-close",
    "promote",
)


@dataclass(frozen=True)
class FaultEvent:
    """One fault or recovery action, attributed to a cycle and a site.

    ``site`` is ``None`` for events that are not site-specific (e.g. a
    message-level fault attributed only to a communication round).
    """

    cycle: int
    kind: str
    site: Optional[int] = None
    detail: str = ""

    def __str__(self) -> str:
        where = f" site={self.site}" if self.site is not None else ""
        tail = f": {self.detail}" if self.detail else ""
        return f"[cycle {self.cycle}] {self.kind}{where}{tail}"


def summarize_faults(events: Iterable[FaultEvent]) -> Counter:
    """Event counts by kind — the one-line view of a faulty run."""
    return Counter(e.kind for e in events)
