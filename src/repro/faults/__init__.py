"""Fault injection and recovery instrumentation.

PARULEL's successor environment (PARADISER) targeted distributed machines
whose sites, workers, and messages actually fail. This package provides the
deterministic fault layer the execution substrates inject from:

- :mod:`repro.faults.plan` — seeded :class:`FaultPlan` descriptions (site
  crashes with optional rejoin, message drop/duplication/delay, straggler
  sites, real worker kills/wedges) and the per-run :class:`FaultInjector`;
- :mod:`repro.faults.events` — the structured :class:`FaultEvent` records
  every injection and recovery action leaves behind, surfaced on
  :class:`~repro.parallel.distributed.DistResult` and
  :class:`~repro.core.engine.CycleReport`.

Recovery itself lives with each substrate: the distributed master replays
its cumulative delta log to rejoining replicas and redistributes a dead
site's rules across survivors; the process pool respawns crashed workers
within a budget and then degrades the site to an in-parent serial matcher.
"""

from repro.faults.events import FaultEvent, summarize_faults
from repro.faults.plan import (
    FaultInjector,
    FaultPlan,
    SiteCrash,
    Straggler,
    WorkerKill,
    WorkerWedge,
)

__all__ = [
    "FaultEvent",
    "FaultInjector",
    "FaultPlan",
    "SiteCrash",
    "Straggler",
    "WorkerKill",
    "WorkerWedge",
    "summarize_faults",
]
