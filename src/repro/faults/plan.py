"""Deterministic, seeded fault plans.

A :class:`FaultPlan` is a *pure description* of what should go wrong during
a run: sites that crash at a given cycle (and optionally rejoin later),
per-message drop/duplication/delay rates, straggler sites, and real worker
kills/wedges for the process backend. Plans are frozen dataclasses — the
same plan injected twice produces the same faults, because every stochastic
decision is drawn from a :class:`random.Random` seeded with ``plan.seed``
inside a fresh :class:`FaultInjector` per run.

The two consumers:

- :class:`~repro.parallel.distributed.DistributedMachine` consumes
  ``crashes`` / ``stragglers`` and the message rates (simulated faults,
  charged through the :class:`~repro.parallel.distributed.NetworkModel`);
- :class:`~repro.parallel.process.ProcessMatchPool` consumes ``kills`` /
  ``wedges`` (real ``SIGKILL`` / ``SIGSTOP`` against its workers).

A plan may carry both kinds; each substrate applies the slice it
understands and ignores the rest, so one plan can describe a whole
experiment.
"""

from __future__ import annotations

import random
from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.faults.events import FaultEvent

__all__ = [
    "SiteCrash",
    "Straggler",
    "WorkerKill",
    "WorkerWedge",
    "FaultPlan",
    "FaultInjector",
]


@dataclass(frozen=True)
class SiteCrash:
    """Site ``site`` dies at the start of cycle ``cycle``.

    ``rejoin_cycle=None`` means the crash is permanent (its rules are
    redistributed across survivors); otherwise the site rejoins at the
    start of that cycle and is caught up by replaying the delta log.
    """

    cycle: int
    site: int
    rejoin_cycle: Optional[int] = None


@dataclass(frozen=True)
class Straggler:
    """Site ``site`` computes ``factor``× slower than planned."""

    site: int
    factor: float = 4.0


@dataclass(frozen=True)
class WorkerKill:
    """SIGKILL the process worker of ``site`` before cycle ``cycle``."""

    cycle: int
    site: int


@dataclass(frozen=True)
class WorkerWedge:
    """SIGSTOP the process worker of ``site`` before cycle ``cycle`` —
    the worker is alive but silent until the pool's timeout unwedges it."""

    cycle: int
    site: int


@dataclass(frozen=True)
class FaultPlan:
    """Seeded description of every fault to inject into one run."""

    seed: int = 0
    #: Probability that any one message transmission is lost (retried).
    drop_rate: float = 0.0
    #: Probability that a delivered message arrives twice.
    dup_rate: float = 0.0
    #: Probability that a delivered message is delayed one extra latency.
    delay_rate: float = 0.0
    #: Retransmissions after which a message is forced through (the
    #: simulation models persistent retry, not permanent partition).
    max_retries: int = 8
    crashes: Tuple[SiteCrash, ...] = ()
    stragglers: Tuple[Straggler, ...] = ()
    kills: Tuple[WorkerKill, ...] = ()
    wedges: Tuple[WorkerWedge, ...] = ()

    def __post_init__(self) -> None:
        for name in ("drop_rate", "dup_rate", "delay_rate"):
            rate = getattr(self, name)
            if not (0.0 <= rate < 1.0):
                raise ValueError(f"{name} must be in [0, 1), got {rate}")
        if self.max_retries < 1:
            raise ValueError("max_retries must be >= 1")
        for crash in self.crashes:
            if crash.cycle < 1:
                raise ValueError("crash cycles are 1-based")
            if crash.rejoin_cycle is not None and crash.rejoin_cycle <= crash.cycle:
                raise ValueError(
                    f"site {crash.site} rejoins at cycle {crash.rejoin_cycle} "
                    f"but crashes at {crash.cycle}"
                )

    def validate_sites(self, n_sites: int) -> None:
        """Check every referenced site exists; the distributed master
        (site 0) hosts the meta level and the timestamp authority, so the
        simulation does not model losing it."""
        for crash in self.crashes:
            if crash.site == 0:
                raise ValueError(
                    "site 0 is the master (meta level + timestamp authority) "
                    "and cannot crash in this model"
                )
            if not (0 <= crash.site < n_sites):
                raise ValueError(f"crash site {crash.site} out of range")
        for straggler in self.stragglers:
            if not (0 <= straggler.site < n_sites):
                raise ValueError(f"straggler site {straggler.site} out of range")

    @property
    def empty(self) -> bool:
        return (
            not self.crashes
            and not self.stragglers
            and not self.kills
            and not self.wedges
            and self.drop_rate == 0.0
            and self.dup_rate == 0.0
            and self.delay_rate == 0.0
        )

    def injector(self) -> "FaultInjector":
        """Fresh per-run injector (resets the RNG and the event log)."""
        return FaultInjector(self)

    @classmethod
    def seeded(
        cls,
        seed: int,
        n_sites: int,
        *,
        crashes: int = 0,
        rejoin: bool = False,
        within_cycles: int = 10,
        drop_rate: float = 0.0,
        dup_rate: float = 0.0,
        delay_rate: float = 0.0,
    ) -> "FaultPlan":
        """Generate a plan from a seed: ``crashes`` distinct non-master
        sites crash at random cycles in ``[2, within_cycles]`` (rejoining
        ``within_cycles`` later when ``rejoin`` is set)."""
        if crashes > max(0, n_sites - 1):
            raise ValueError("cannot crash more sites than exist besides the master")
        rng = random.Random(seed)
        victims = rng.sample(range(1, n_sites), crashes) if crashes else []
        planned = tuple(
            SiteCrash(
                cycle=(cycle := rng.randint(2, max(2, within_cycles))),
                site=site,
                rejoin_cycle=cycle + within_cycles if rejoin else None,
            )
            for site in victims
        )
        return cls(
            seed=seed,
            drop_rate=drop_rate,
            dup_rate=dup_rate,
            delay_rate=delay_rate,
            crashes=planned,
        )


class FaultInjector:
    """Per-run state of a :class:`FaultPlan`: the seeded RNG, schedule
    lookups, and the accumulated :class:`FaultEvent` log."""

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self.rng = random.Random(plan.seed)
        self.events: List[FaultEvent] = []
        self.retries = 0
        self._crashes: Dict[int, List[SiteCrash]] = defaultdict(list)
        self._rejoins: Dict[int, List[SiteCrash]] = defaultdict(list)
        for crash in plan.crashes:
            self._crashes[crash.cycle].append(crash)
            if crash.rejoin_cycle is not None:
                self._rejoins[crash.rejoin_cycle].append(crash)
        self._kills: Dict[int, List[WorkerKill]] = defaultdict(list)
        for kill in plan.kills:
            self._kills[kill.cycle].append(kill)
        self._wedges: Dict[int, List[WorkerWedge]] = defaultdict(list)
        for wedge in plan.wedges:
            self._wedges[wedge.cycle].append(wedge)
        self._straggle: Dict[int, float] = {
            s.site: s.factor for s in plan.stragglers
        }

    # -- event log ---------------------------------------------------------

    def record(
        self, cycle: int, kind: str, site: Optional[int] = None, detail: str = ""
    ) -> FaultEvent:
        event = FaultEvent(cycle=cycle, kind=kind, site=site, detail=detail)
        self.events.append(event)
        return event

    def drain_events(self) -> List[FaultEvent]:
        """Events since the last drain (the process pool's per-cycle feed)."""
        out, self.events = self.events, []
        return out

    # -- schedules ---------------------------------------------------------

    def crashes_at(self, cycle: int) -> List[SiteCrash]:
        return self._crashes.get(cycle, [])

    def rejoins_at(self, cycle: int) -> List[SiteCrash]:
        return self._rejoins.get(cycle, [])

    def kills_at(self, cycle: int) -> List[WorkerKill]:
        return self._kills.get(cycle, [])

    def wedges_at(self, cycle: int) -> List[WorkerWedge]:
        return self._wedges.get(cycle, [])

    def straggle_factor(self, site: int) -> float:
        return self._straggle.get(site, 1.0)

    # -- message fates -----------------------------------------------------

    def message_fate(self) -> Tuple[int, bool, bool]:
        """Seeded fate of one message: ``(drops, duplicated, delayed)``.

        ``drops`` is how many transmissions were lost before one got
        through (bounded by ``max_retries`` — the sender retries until
        delivery, so drops cost time, never data).
        """
        plan = self.plan
        drops = 0
        while drops < plan.max_retries and self.rng.random() < plan.drop_rate:
            drops += 1
        self.retries += drops
        duplicated = plan.dup_rate > 0.0 and self.rng.random() < plan.dup_rate
        delayed = plan.delay_rate > 0.0 and self.rng.random() < plan.delay_rate
        return drops, duplicated, delayed
