"""Exception hierarchy for the PARULEL reproduction.

Every error raised by the library derives from :class:`ReproError`, so callers
can catch one type. Sub-hierarchies mirror the pipeline stages: lexing/parsing,
semantic analysis, working-memory operations, match compilation, and runtime
execution (including the firing-interference errors specific to PARULEL's
set-oriented semantics).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class LexError(ReproError):
    """Raised when the lexer encounters an invalid character sequence.

    Carries the 1-based ``line`` and ``column`` of the offending input.
    """

    def __init__(self, message: str, line: int, column: int) -> None:
        super().__init__(f"{message} (line {line}, column {column})")
        self.line = line
        self.column = column


class ParseError(ReproError):
    """Raised when the parser cannot build an AST from a token stream."""

    def __init__(self, message: str, line: int = 0, column: int = 0) -> None:
        loc = f" (line {line}, column {column})" if line else ""
        super().__init__(f"{message}{loc}")
        self.line = line
        self.column = column


class SemanticError(ReproError):
    """Raised by semantic analysis: unbound variables, unknown classes or
    attributes, ill-typed actions, meta-rule violations, and similar."""


class WorkingMemoryError(ReproError):
    """Raised on invalid working-memory operations (e.g. removing a WME that
    is not present, or making a WME with an undeclared attribute when a
    template is enforced)."""


class MatchError(ReproError):
    """Raised when a rule cannot be compiled into a match network."""


class PartitionConstraintError(MatchError):
    """Raised by :func:`repro.parallel.partition.copy_and_constrain` when a
    partition's membership test conjoins with an existing test on the same
    attribute into an unsatisfiable constraint — the resulting rule copy
    could never match, so the split silently drops work instead of
    distributing it. Carries the ``rule`` name and ``attribute``.
    """

    def __init__(self, message: str, rule: str = "", attribute: str = "") -> None:
        super().__init__(message)
        self.rule = rule
        self.attribute = attribute


class ExecutionError(ReproError):
    """Raised for runtime failures while firing rules (bad CE index in a
    ``modify``, arithmetic on non-numbers, exceeding the cycle limit, ...)."""


class CheckpointCorruptError(ExecutionError):
    """Raised when a checkpoint file fails integrity verification: bad
    magic, truncated payload, SHA-256 digest mismatch, malformed JSON, or
    an unusable store directory. Carries the offending ``path`` so callers
    (and the CLI) can name the file; the checkpoint store catches it
    internally to fall back to the last good snapshot.
    """

    def __init__(self, path: str, reason: str) -> None:
        super().__init__(f"corrupt checkpoint {path!r}: {reason}")
        self.path = path
        self.reason = reason


class BlackboxCorruptError(ReproError):
    """Raised when a ``*.blackbox`` flight-recorder dump cannot be decoded:
    bad magic, truncated header or ring blob, or corrupt header JSON.

    Torn *records* inside a ring (a writer SIGKILLed mid-write) are not an
    error — the decoder skips and counts them; this exception means the
    dump file itself is unusable.
    """


class InterferenceError(ExecutionError):
    """Raised under the ``error`` interference policy when two instantiations
    in the same firing set issue incompatible updates to one WME.

    PARULEL expects the programmer's meta-rules to redact such pairs; this
    error is the engine telling the programmer a redaction rule is missing.
    """

    def __init__(self, message: str, wme=None, actions=(), rules=()) -> None:
        super().__init__(message)
        self.wme = wme
        self.actions = tuple(actions)
        #: Names of the two rules whose firings conflicted (when known) —
        #: the porting lint's tests check each runtime pair appears among
        #: its static candidates.
        self.rules = tuple(rules)


class CommuteViolationError(ExecutionError):
    """Raised by the runtime race sanitizer (``--sanitize-races``) when a
    fired pair whose rules the commute analysis certified as COMMUTES
    produces divergent working-memory deltas under the two firing orders.

    This never fires for honest programs: it means the static certificate
    (or the concrete per-cycle certification used by the certified
    redaction fast path) is unsound, which is exactly the bug class the
    sanitizer exists to catch before it can corrupt results silently.
    Carries the two ``rules`` and the ``cycle`` the divergence occurred on.
    """

    def __init__(self, message: str, rules=(), cycle: int = 0) -> None:
        super().__init__(message)
        self.rules = tuple(rules)
        self.cycle = cycle


class CycleLimitExceeded(ExecutionError):
    """Raised when an engine exceeds its configured maximum cycle count,
    usually indicating a non-terminating rule program.

    The work done before the limit is not discarded: the exception carries
    ``cycles_completed`` / ``firings`` counts, the ``last_report``
    (the final :class:`~repro.core.engine.CycleReport`, when the engine
    produces them), and optionally a substrate-specific ``partial`` result
    (e.g. a :class:`~repro.parallel.distributed.DistResult`), so callers
    and the CLI can report progress instead of losing the run.
    """

    def __init__(
        self,
        message: str,
        *,
        cycles_completed: int = 0,
        firings: int = 0,
        last_report=None,
        partial=None,
    ) -> None:
        super().__init__(message)
        self.cycles_completed = cycles_completed
        self.firings = firings
        self.last_report = last_report
        self.partial = partial


class HaltSignal(Exception):
    """Internal control-flow signal raised by the ``(halt)`` action.

    Not a :class:`ReproError`: engines catch it to stop the recognize-act
    cycle cleanly; it never escapes the public API.
    """
