"""Instantiations and the conflict set.

An :class:`Instantiation` is one complete match of a rule: the WMEs bound to
each positive condition element plus the variable environment they induce.
Instantiations are value objects — their :attr:`~Instantiation.key`
``(rule name, per-CE timestamps)`` identifies them across match engines, so
refraction, redaction, and differential tests all speak one language.

The :class:`ConflictSet` is an insertion-ordered dict of instantiations keyed
by that identity, with the derived orderings OPS5's LEX/MEA strategies and
PARULEL's meta level need (recency vectors, specificity).
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Mapping, Optional, Tuple

from repro.lang.ast import Rule, Value
from repro.wm.wme import WME

__all__ = ["Instantiation", "ConflictSet", "InstKey"]

#: Identity of an instantiation: rule name + timestamp per CE (0 where the
#: CE is negated and thus matched by absence).
InstKey = Tuple[str, Tuple[int, ...]]


class Instantiation:
    """One complete match of a rule against working memory."""

    __slots__ = ("rule", "wmes", "env", "key", "_hash")

    def __init__(
        self,
        rule: Rule,
        wmes: Tuple[Optional[WME], ...],
        env: Mapping[str, Value],
    ) -> None:
        if len(wmes) != len(rule.conditions):
            raise ValueError(
                f"instantiation of {rule.name!r} has {len(wmes)} WMEs for "
                f"{len(rule.conditions)} condition elements"
            )
        self.rule = rule
        self.wmes = wmes
        self.env: Dict[str, Value] = dict(env)
        self.key: InstKey = (
            rule.name,
            tuple(w.timestamp if w is not None else 0 for w in wmes),
        )
        self._hash = hash(self.key)

    # -- derived orderings -------------------------------------------------

    @property
    def timestamps(self) -> Tuple[int, ...]:
        """Timestamps of the matched (positive) WMEs, descending — the
        recency vector LEX compares lexicographically."""
        return tuple(
            sorted((w.timestamp for w in self.wmes if w is not None), reverse=True)
        )

    @property
    def recency(self) -> int:
        """Most recent matched timestamp (0 if somehow empty)."""
        ts = self.timestamps
        return ts[0] if ts else 0

    @property
    def specificity(self) -> int:
        return self.rule.specificity

    @property
    def salience(self) -> int:
        return self.rule.salience

    def wme_for_ce(self, ce_index: int) -> WME:
        """The WME matched by 1-based CE ``ce_index`` (raises on negated)."""
        wme = self.wmes[ce_index - 1]
        if wme is None:
            raise LookupError(
                f"condition element {ce_index} of {self.rule.name!r} is negated"
            )
        return wme

    def binding(self, var: str) -> Value:
        """Value bound to variable ``var`` (raises ``KeyError`` if unbound)."""
        return self.env[var]

    def uses(self, wme: WME) -> bool:
        """Whether this instantiation matched ``wme`` at a positive CE."""
        return any(w is not None and w == wme for w in self.wmes)

    # -- identity -------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Instantiation):
            return NotImplemented
        return self.key == other.key

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        ts = ",".join(str(t) for t in self.key[1])
        return f"<{self.rule.name} [{ts}]>"


class ConflictSet:
    """Insertion-ordered set of instantiations keyed by identity.

    Secondary indexes by participating WME and by rule name make
    :meth:`remove_with_wme` and :meth:`of_rule` proportional to the
    returned instantiations rather than the retained set — the hot paths
    of TREAT's churn handling. Both preserve conflict-set insertion order
    (index buckets are insertion-ordered dicts).
    """

    def __init__(self) -> None:
        self._by_key: Dict[InstKey, Instantiation] = {}
        self._by_rule: Dict[str, Dict[InstKey, Instantiation]] = {}
        self._by_wme: Dict[WME, Dict[InstKey, Instantiation]] = {}

    def add(self, inst: Instantiation) -> bool:
        """Insert; returns False if an equal instantiation is present."""
        if inst.key in self._by_key:
            return False
        self._by_key[inst.key] = inst
        rule_bucket = self._by_rule.get(inst.rule.name)
        if rule_bucket is None:
            rule_bucket = self._by_rule[inst.rule.name] = {}
        rule_bucket[inst.key] = inst
        for wme in inst.wmes:
            if wme is not None:
                wme_bucket = self._by_wme.get(wme)
                if wme_bucket is None:
                    wme_bucket = self._by_wme[wme] = {}
                wme_bucket[inst.key] = inst
        return True

    def _unlink(self, inst: Instantiation) -> None:
        """Drop ``inst`` from the secondary indexes."""
        rule_bucket = self._by_rule.get(inst.rule.name)
        if rule_bucket is not None:
            rule_bucket.pop(inst.key, None)
            if not rule_bucket:
                del self._by_rule[inst.rule.name]
        for wme in inst.wmes:
            if wme is not None:
                wme_bucket = self._by_wme.get(wme)
                if wme_bucket is not None:
                    wme_bucket.pop(inst.key, None)
                    if not wme_bucket:
                        del self._by_wme[wme]

    def remove(self, inst: Instantiation) -> None:
        del self._by_key[inst.key]
        self._unlink(inst)

    def discard_key(self, key: InstKey) -> Optional[Instantiation]:
        inst = self._by_key.pop(key, None)
        if inst is not None:
            self._unlink(inst)
        return inst

    def get(self, key: InstKey) -> Optional[Instantiation]:
        return self._by_key.get(key)

    def __contains__(self, inst: Instantiation) -> bool:
        return inst.key in self._by_key

    def __len__(self) -> int:
        return len(self._by_key)

    def __iter__(self) -> Iterator[Instantiation]:
        return iter(self._by_key.values())

    def clear(self) -> None:
        self._by_key.clear()
        self._by_rule.clear()
        self._by_wme.clear()

    def instantiations(self) -> List[Instantiation]:
        """Stable snapshot, in insertion order."""
        return list(self._by_key.values())

    def remove_with_wme(self, wme: WME) -> List[Instantiation]:
        """Drop every instantiation that matched ``wme``; return them
        (in conflict-set insertion order)."""
        bucket = self._by_wme.pop(wme, None)
        if not bucket:
            return []
        victims = list(bucket.values())
        for inst in victims:
            del self._by_key[inst.key]
            self._unlink(inst)
        return victims

    def of_rule(self, rule_name: str) -> List[Instantiation]:
        """Retained instantiations of one rule, in insertion order."""
        bucket = self._by_rule.get(rule_name)
        return list(bucket.values()) if bucket else []
