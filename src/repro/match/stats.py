"""Match-work accounting.

Match engines count the abstract operations they perform. The counters serve
two purposes:

1. *Measurement* — Figure 3 and Ablation A2 compare engines by work done,
   which is steadier than wall-clock on a shared machine;
2. *Simulation* — :class:`repro.parallel.simmachine.SimMachine` converts
   per-rule operation counts into simulated time through a
   :class:`repro.parallel.costmodel.CostModel`, which is how the paper-style
   speedup curves are produced deterministically.

Counter semantics (shared vocabulary across engines):

``alpha_tests``
    WME-local test evaluations,
``join_probes``
    candidate WME visits at positive CEs during joins (with hash indexing
    only the probed bucket is visited, so this is the headline win),
``join_checks``
    candidate WME visits at negated CEs (blocking checks),
``hash_probes``
    bucket lookups in the hash-indexed alpha memories,
``bucket_hits``
    total candidates returned by those lookups,
``tokens``
    partial matches created (RETE beta insertions / TREAT seed extensions),
``instantiations``
    complete matches added to the conflict set,
``retractions``
    tokens or instantiations removed due to WME retraction.

Per-rule attribution lives in :attr:`MatchStats.per_rule` under the same
keys — except ``alpha_tests``, which is *never* rule-attributed: alpha
memories are shared across rules (and, through the alpha cache, across
matcher requests), so there is no single rule to charge. Every matcher
bumps it globally only; a stats test asserts this stays consistent.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, Iterable, Tuple

__all__ = ["MatchStats", "COUNTER_NAMES"]

COUNTER_NAMES: Tuple[str, ...] = (
    "alpha_tests",
    "join_probes",
    "join_checks",
    "hash_probes",
    "bucket_hits",
    "tokens",
    "instantiations",
    "retractions",
)


@dataclass
class MatchStats:
    """Mutable operation counters, overall and attributed per rule."""

    totals: Counter = field(default_factory=Counter)
    per_rule: Dict[str, Counter] = field(default_factory=dict)

    def bump(self, counter: str, rule: str = "", n: int = 1) -> None:
        """Increment ``counter`` by ``n``, attributing to ``rule`` if given."""
        self.totals[counter] += n
        if rule:
            bucket = self.per_rule.get(rule)
            if bucket is None:
                bucket = self.per_rule[rule] = Counter()
            bucket[counter] += n

    def reset(self) -> None:
        self.totals.clear()
        self.per_rule.clear()

    def snapshot(self) -> Counter:
        return Counter(self.totals)

    def rule_total(self, rule: str, counters: Iterable[str] = COUNTER_NAMES) -> int:
        bucket = self.per_rule.get(rule)
        if not bucket:
            return 0
        return sum(bucket[c] for c in counters)

    def merge(self, other: "MatchStats") -> None:
        self.totals.update(other.totals)
        for rule, bucket in other.per_rule.items():
            mine = self.per_rule.setdefault(rule, Counter())
            mine.update(bucket)

    def __str__(self) -> str:
        parts = [f"{name}={self.totals[name]}" for name in COUNTER_NAMES]
        return "MatchStats(" + ", ".join(parts) + ")"
