"""The common matcher interface.

A matcher attaches to a :class:`~repro.wm.memory.WorkingMemory`, observes
every assert/retract, and keeps a :class:`~repro.match.instantiation.ConflictSet`
current. Engines (:mod:`repro.core`, :mod:`repro.baseline`) and the parallel
substrate only ever talk to this interface, so the match algorithm is a
plug-in choice.
"""

from __future__ import annotations

import abc
from typing import List, Optional, Sequence

from repro.lang.ast import Rule
from repro.match.compile import CompiledRule, compile_rules
from repro.match.instantiation import ConflictSet, Instantiation
from repro.match.stats import MatchStats
from repro.wm.memory import WorkingMemory
from repro.wm.wme import WME

__all__ = ["Matcher", "create_matcher", "MATCHER_NAMES"]


class Matcher(abc.ABC):
    """Base class for match engines.

    Subclasses implement :meth:`_on_add` / :meth:`_on_remove` (incremental)
    and/or :meth:`_recompute` (batch). The base class wires WM listening,
    compiled-rule storage, statistics, and conflict-set access.
    """

    #: Human-readable engine name (used in reports and ``create_matcher``).
    name: str = "abstract"

    def __init__(
        self, rules: Sequence[Rule], wm: WorkingMemory, indexed: bool = True
    ) -> None:
        #: Hash-indexed alpha memories + join planning on (default) or the
        #: historical nested-loop path (``--no-index``). Same conflict sets
        #: either way; RETE — always hash-joined — ignores it.
        self.indexed = indexed
        self.compiled: tuple[CompiledRule, ...] = compile_rules(rules)
        self.wm = wm
        self.stats = MatchStats()
        self.conflict_set = ConflictSet()
        self._attached = False
        self._build()
        # Feed pre-existing WMEs through the incremental path so attaching
        # to a populated memory behaves like replaying its history.
        for wme in sorted(wm, key=lambda w: w.timestamp):
            self._on_add(wme)
        wm.add_listener(self._listener)
        self._attached = True

    # -- wiring -----------------------------------------------------------

    def _listener(self, wme: WME, added: bool) -> None:
        if added:
            self._on_add(wme)
        else:
            self._on_remove(wme)

    def detach(self) -> None:
        """Stop observing the working memory (matcher becomes stale)."""
        if self._attached:
            self.wm.remove_listener(self._listener)
            self._attached = False

    # -- to implement -------------------------------------------------------

    def _build(self) -> None:
        """Hook: construct engine-internal structures before replay."""

    @abc.abstractmethod
    def _on_add(self, wme: WME) -> None:
        """Incorporate one asserted WME."""

    @abc.abstractmethod
    def _on_remove(self, wme: WME) -> None:
        """Incorporate one retracted WME."""

    # -- queries -----------------------------------------------------------

    def instantiations(self) -> List[Instantiation]:
        """Current conflict set, insertion-ordered, as a stable snapshot."""
        return self.conflict_set.instantiations()

    def rule_names(self) -> List[str]:
        return [cr.name for cr in self.compiled]


#: Registry of engine names accepted by :func:`create_matcher`. ``process``
#: also accepts an explicit worker count as ``process:N``.
MATCHER_NAMES = ("rete", "rete-shared", "treat", "naive", "process")


def create_matcher(
    engine: str,
    rules: Sequence[Rule],
    wm: WorkingMemory,
    *,
    timeout: Optional[float] = None,
    respawn_limit: Optional[int] = None,
    fault_plan=None,
    assignment=None,
    supervisor=None,
    tracer=None,
    metrics=None,
    flightrec=None,
    indexed: bool = True,
    vector_probe: bool = True,
) -> Matcher:
    """Instantiate a match engine by name (``rete``, ``treat``, ``naive`` or
    ``process``/``process:N`` for the multiprocessing fan-out).

    ``timeout`` (per-worker reply deadline, seconds), ``respawn_limit``
    (per-site crash budget before graceful degradation), ``fault_plan``
    (a :class:`~repro.faults.FaultPlan` of injected worker faults),
    ``assignment`` (a rule-to-site policy name — ``"round-robin"`` or
    ``"analysis"`` — or a concrete
    :class:`~repro.parallel.partition.Assignment`) and ``supervisor``
    (a :class:`~repro.resilience.supervisor.SupervisorPolicy` governing
    heartbeats, backoff, circuit breaking and the degradation ladder)
    apply only to the ``process`` backend; passing them for a serial
    engine is an error rather than a silent no-op.

    ``indexed`` is likewise cross-cutting: it selects the hash-indexed
    join kernel (default) or the nested-loop escape hatch (``--no-index``)
    for the enumerator-based engines, and is accepted — and ignored — by
    RETE, whose beta network is always hash-joined.

    ``vector_probe`` follows the same convention: it enables the
    vectorized column-scan probe kernel (``--no-vector-probe`` to
    disable), which only takes effect in ``process`` workers attached to
    a columnar store — every other engine matches over WME objects and
    accepts the flag as a no-op so callers need not special-case it.

    ``tracer`` / ``metrics`` / ``flightrec`` (:mod:`repro.obs`) are
    cross-cutting and accepted for every backend: the process pool uses
    them to record worker lanes, IPC counts and per-worker flight rings,
    while serial engines — whose work the engine's own phase spans and
    ring records already cover — have nothing extra to record and ignore
    them. They never change match behaviour, so unlike the process-only
    knobs they are not an error elsewhere.
    """
    # Imported here to avoid a cycle (engines import this interface).
    from repro.match.naive import NaiveMatcher
    from repro.match.rete import ReteMatcher, SharedReteMatcher
    from repro.match.treat import TreatMatcher

    if engine == "process" or engine.startswith("process:"):
        from repro.parallel.process import DEFAULT_TIMEOUT, ProcessMatcher

        n_workers = None
        if ":" in engine:
            try:
                n_workers = int(engine.split(":", 1)[1])
            except ValueError:
                raise ValueError(
                    f"bad worker count in match engine spec {engine!r} "
                    f"(expected process:<int>)"
                ) from None
        return ProcessMatcher(
            rules,
            wm,
            n_workers=n_workers,
            assignment=assignment,
            timeout=timeout if timeout is not None else DEFAULT_TIMEOUT,
            respawn_limit=respawn_limit,
            fault_plan=fault_plan,
            supervisor=supervisor,
            tracer=tracer,
            metrics=metrics,
            flightrec=flightrec,
            indexed=indexed,
            vector_probe=vector_probe,
        )

    if (
        timeout is not None
        or respawn_limit is not None
        or fault_plan is not None
        or assignment is not None
        or supervisor is not None
    ):
        raise ValueError(
            f"timeout/respawn_limit/fault_plan/assignment/supervisor only "
            f"apply to the 'process' backend, not {engine!r}"
        )

    table = {
        "rete": ReteMatcher,
        "rete-shared": SharedReteMatcher,
        "treat": TreatMatcher,
        "naive": NaiveMatcher,
    }
    try:
        cls = table[engine]
    except KeyError:
        raise ValueError(
            f"unknown match engine {engine!r} (choose from {MATCHER_NAMES})"
        ) from None
    return cls(rules, wm, indexed=indexed)
