"""TREAT match engine (Miranker 1987, from the DADO lineage PARULEL grew
out of).

TREAT retains only **alpha memories** and the **conflict set** — no beta
memories. Each WME delta seeds a join:

- *Add to a positive CE's memory*: enumerate the rule's join with that CE
  pinned to the new WME (every new instantiation must use it there).
- *Add to a negated CE's memory*: scan the rule's conflict-set entries and
  retract those the new WME now blocks.
- *Remove from a positive CE's memory*: drop conflict-set entries that used
  the WME.
- *Remove from a negated CE's memory*: instantiations it was blocking may
  now exist. When the negated CE's join tests are all equalities we seed the
  join with the variable values the removed WME pinned; otherwise we fall
  back to a full re-enumeration of that rule (deduplicated against the
  retained set).

The trade: TREAT redoes join work RETE would have cached, but pays nothing
to maintain beta state when WMEs churn — the regime Ablation A2 measures.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.lang.ast import Value
from repro.match.alphaindex import IndexedMemory, MemoryTable
from repro.match.compile import AlphaKey, CompiledCE, CompiledRule, alpha_test_passes
from repro.match.interface import Matcher
from repro.match.join import enumerate_matches, join_tests_pass
from repro.wm.wme import WME

__all__ = ["TreatMatcher"]


class TreatMatcher(Matcher):
    """Conflict-set-retaining matcher with alpha memories only.

    The retained memories are :class:`~repro.match.alphaindex.IndexedMemory`
    instances, so the seeded joins probe hash buckets keyed by the delta
    WME's join values instead of scanning whole memories (``indexed=False``
    keeps the memories but enumerates with the nested-loop path).
    """

    name = "treat"

    def _build(self) -> None:
        #: alpha pattern -> indexed, insertion-ordered memory.
        self._mems: Dict[AlphaKey, IndexedMemory] = {}
        #: class name -> alpha keys to test on each add/remove.
        self._keys_by_class: Dict[str, List[AlphaKey]] = {}
        #: alpha pattern -> (rule, ce) pairs fed by it.
        self._subscribers: Dict[AlphaKey, List[Tuple[CompiledRule, CompiledCE]]] = {}
        for compiled in self.compiled:
            for ce in compiled.ces:
                key = ce.alpha_key
                if key not in self._mems:
                    self._mems[key] = IndexedMemory()
                    self._keys_by_class.setdefault(ce.class_name, []).append(key)
                    self._subscribers[key] = []
                self._subscribers[key].append((compiled, ce))
        self._alpha = MemoryTable(self._mems)

    # -- add -----------------------------------------------------------------

    def _on_add(self, wme: WME) -> None:
        # Phase 1: update every alpha memory before any join runs, so a WME
        # matching several CEs is visible to all of them at once.
        hits: List[AlphaKey] = []
        for key in self._keys_by_class.get(wme.class_name, ()):
            # Global only — alpha memories are shared across rules, so
            # there is no single rule to attribute the test to.
            self.stats.bump("alpha_tests")
            if alpha_test_passes(key[1], wme):
                self._mems[key].add(wme)
                hits.append(key)
        # Phase 2: seeded joins / negation invalidation.
        for key in hits:
            for compiled, ce in self._subscribers[key]:
                if ce.negated:
                    self._invalidate_blocked(compiled, ce, wme)
                else:
                    for inst in enumerate_matches(
                        compiled,
                        self.wm,
                        self.stats,
                        fixed=(ce.index, wme),
                        alpha_source=self._alpha,
                        indexed=self.indexed,
                    ):
                        self.conflict_set.add(inst)

    def _invalidate_blocked(self, compiled: CompiledRule, ce: CompiledCE, wme: WME) -> None:
        """A WME newly matching a negated CE retracts the instantiations it
        blocks (those whose environment satisfies the CE's join tests).

        ``of_rule`` is index-backed, so this scans only the rule's own
        retained entries, not the whole conflict set."""
        for inst in self.conflict_set.of_rule(compiled.name):
            self.stats.bump("join_checks", compiled.name)
            if join_tests_pass(ce, wme, inst.env):
                self.conflict_set.remove(inst)
                self.stats.bump("retractions", compiled.name)

    # -- remove ---------------------------------------------------------------

    def _on_remove(self, wme: WME) -> None:
        hits: List[AlphaKey] = []
        for key in self._keys_by_class.get(wme.class_name, ()):
            if self._mems[key].remove(wme):
                hits.append(key)
        if not hits:
            return
        # Positive participation: drop conflict-set entries that used it.
        removed = self.conflict_set.remove_with_wme(wme)
        if removed:
            self.stats.bump("retractions", n=len(removed))
        # Negative participation: unblocked instantiations may now exist.
        for key in hits:
            for compiled, ce in self._subscribers[key]:
                if ce.negated:
                    self._discover_unblocked(compiled, ce, wme)

    def _discover_unblocked(self, compiled: CompiledRule, ce: CompiledCE, wme: WME) -> None:
        eq = ce.eq_join_tests
        if eq:
            # Any environment the removed WME was blocking had to satisfy its
            # equality tests, so pinning those variables to the WME's values
            # covers every candidate; enumerate_matches re-checks the negated
            # CE against the *current* memories, so no false positives.
            seed = {var: wme.get(attr) for attr, var in eq}
        else:
            if not ce.join_tests and self._mems[ce.alpha_key]:
                return  # purely alpha-level negation, still blocked for all
            seed = None  # only non-equality tests: re-enumerate the rule
        for inst in enumerate_matches(
            compiled,
            self.wm,
            self.stats,
            seed_env=seed,
            alpha_source=self._alpha,
            indexed=self.indexed,
        ):
            self.conflict_set.add(inst)
