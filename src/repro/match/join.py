"""A generic, seedable join enumerator over condition elements.

This is the semantic core shared by :class:`~repro.match.naive.NaiveMatcher`
(full enumeration) and :class:`~repro.match.treat.TreatMatcher` (delta-seeded
enumeration): walk the condition elements, extending a set of partial
environments, checking negated CEs by absence.

Two seeding mechanisms make it reusable:

``fixed``
    pin condition element *i* to exactly one WME — TREAT's
    "the new WME must participate here" seed;
``seed_env``
    pre-bind variables — used when a WME matching a *negated* CE is
    retracted and we must discover the instantiations it was blocking.

``alpha_source`` abstracts where candidate WMEs come from. An *indexed*
source (anything with a ``memory(ce)`` method returning an
:class:`~repro.match.alphaindex.IndexedMemory` — TREAT's retained memories
via :class:`~repro.match.alphaindex.MemoryTable`, or a shared
:class:`~repro.match.alphaindex.AlphaCache`) unlocks the hash-join path:
equality join tests whose variables are already bound become bucket probes
instead of memory scans, and the CE visit order follows the rule's
:class:`~repro.match.compile.JoinPlan`. A plain callable source (legacy
protocol) or ``indexed=False`` runs the historical nested-loop enumeration,
byte for byte.

Determinism: indexed memories preserve timestamp (insertion) order in every
bucket, and planned enumerations are sorted back into the order the
identity left-to-right enumeration yields (ascending lexicographic per-CE
timestamp tuples) — so conflict-set insertion order, and therefore firing
order and final WM, are identical with indexing on or off. Differential
tests enforce this.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, Iterator, List, Optional, Tuple

from repro.lang.ast import Value
from repro.match.alphaindex import AlphaCache
from repro.match.compile import (
    CompiledCE,
    CompiledRule,
    alpha_test_passes,
    value_predicate,
)
from repro.match.instantiation import Instantiation
from repro.match.stats import MatchStats
from repro.wm.memory import WorkingMemory
from repro.wm.wme import WME

__all__ = ["enumerate_matches", "default_alpha_source", "join_tests_pass"]

Env = Dict[str, Value]
AlphaSource = Callable[[CompiledCE], Iterable[WME]]


def default_alpha_source(wm: WorkingMemory, stats: Optional[MatchStats] = None, rule: str = "") -> AlphaSource:
    """Alpha source that filters the working memory on every request.

    ``alpha_tests`` are bumped globally, never per rule — consistent with
    every other alpha layer (shared memories have no single rule to charge).
    The ``rule`` parameter is retained for signature compatibility.
    """

    def source(ce: CompiledCE) -> Iterator[WME]:
        for wme in wm.by_class(ce.class_name):
            if stats is not None:
                stats.bump("alpha_tests")
            if alpha_test_passes(ce.alpha_conds, wme):
                yield wme

    return source


def join_tests_pass(ce: CompiledCE, wme: WME, env: Env) -> bool:
    """Evaluate a CE's environment-dependent tests for one candidate."""
    for attr, op, var in ce.join_tests:
        if not value_predicate(op, wme.get(attr), env[var]):
            return False
    return True


def _residual_pass(
    ce: CompiledCE,
    wme: WME,
    env: Env,
    residual: Tuple[Tuple[str, str, str], ...],
) -> bool:
    """Tests left after a hash probe: non-probed join tests + local conds."""
    for attr, op, var in residual:
        if not value_predicate(op, wme.get(attr), env[var]):
            return False
    if ce.local_conds and not alpha_test_passes(ce.local_conds, wme):
        return False
    return True


def _extend_env(ce: CompiledCE, wme: WME, env: Env) -> Optional[Env]:
    """Apply the CE's bindings; respects pre-seeded values as constraints.

    Returns the (possibly shared) environment, or ``None`` when a seeded
    binding disagrees with the WME.
    """
    if not ce.bindings:
        return env
    new_env: Optional[Env] = None
    for attr, var in ce.bindings:
        value = wme.get(attr)
        if var in env:
            if env[var] != value:
                return None
            continue
        if new_env is None:
            new_env = dict(env)
        new_env[var] = value
    return new_env if new_env is not None else env


def _ts(wme: Optional[WME]) -> int:
    return (wme.timestamp or 0) if wme is not None else 0


def enumerate_matches(
    compiled: CompiledRule,
    wm: WorkingMemory,
    stats: Optional[MatchStats] = None,
    fixed: Optional[Tuple[int, WME]] = None,
    seed_env: Optional[Env] = None,
    alpha_source: Optional[AlphaSource] = None,
    indexed: bool = True,
) -> Iterator[Instantiation]:
    """Yield every instantiation of ``compiled`` consistent with the seeds.

    ``fixed=(i, wme)`` pins 0-based CE index ``i`` (which must be positive)
    to ``wme``; the WME is still alpha- and join-tested, so passing a WME
    that does not actually match yields nothing rather than nonsense.

    With ``indexed`` (the default) and no legacy-callable ``alpha_source``,
    enumeration follows the rule's join plan and probes hash buckets;
    ``indexed=False`` reproduces the nested-loop scan exactly (the
    ``--no-index`` ablation path).
    """
    rule_name = compiled.name
    src = None  # indexed source: has .memory(ce) -> IndexedMemory
    legacy: Optional[AlphaSource] = None
    if alpha_source is None:
        if indexed:
            src = AlphaCache(wm, stats)  # transient, lazily primed
        else:
            legacy = default_alpha_source(wm, stats, rule_name)
    elif hasattr(alpha_source, "memory"):
        src = alpha_source
    else:
        legacy = alpha_source

    use_index = indexed and src is not None
    plan = None
    if use_index:
        if fixed is not None:
            plan = compiled.seeded_plan(fixed[0])
        if plan is None:
            plan = compiled.plan
    ces = plan.ces if plan is not None else compiled.ces

    # Each partial: (env, wmes) where wmes has one entry per CE visited so
    # far (in visit order; restored to rule order at the end under a plan).
    partials: List[Tuple[Env, Tuple[Optional[WME], ...]]] = [
        (dict(seed_env) if seed_env else {}, ())
    ]

    for ce in ces:
        if not partials:
            return
        mem = src.memory(ce) if src is not None else None
        # All partials at one visit position share the same bound-variable
        # set, so the probe key shape is computed once from the first.
        env0 = partials[0][0]
        probe_pairs: Tuple[Tuple[str, str], ...] = ()
        if use_index:
            probe_pairs = tuple(
                (attr, var)
                for attr, op, var in ce.join_tests
                if op == "=" and var in env0
            )
            if not ce.negated and not (fixed is not None and fixed[0] == ce.index):
                # Pre-seeded bindings act as equality constraints too.
                probe_pairs += tuple(
                    (attr, var) for attr, var in ce.bindings if var in env0
                )
        if probe_pairs:
            probe_attrs = tuple(attr for attr, _var in probe_pairs)
            probe_vars = tuple(var for _attr, var in probe_pairs)
            probed = set(probe_pairs)
            residual = tuple(
                t for t in ce.join_tests
                if not (t[1] == "=" and (t[0], t[2]) in probed)
            )

        next_partials: List[Tuple[Env, Tuple[Optional[WME], ...]]] = []
        if ce.negated:
            if probe_pairs:
                # With no residual tests left, "does any WME block this
                # partial" is exactly bucket non-emptiness — answerable
                # without materializing the bucket (for the column-native
                # memories, without decoding a single row). Only taken when
                # no stats are collected: the per-WME counter stream must
                # stay byte-identical for the benchmark gates.
                if (
                    stats is None
                    and not residual
                    and not ce.local_conds
                    and hasattr(mem, "probe_exists")
                ):
                    for env, wmes in partials:
                        if not mem.probe_exists(
                            probe_attrs, tuple(env[v] for v in probe_vars)
                        ):
                            next_partials.append((env, wmes + (None,)))
                    partials = next_partials
                    continue
                for env, wmes in partials:
                    if stats is not None:
                        stats.bump("hash_probes", rule_name)
                    bucket = mem.probe(
                        probe_attrs, tuple(env[v] for v in probe_vars)
                    )
                    if stats is not None and bucket:
                        stats.bump("bucket_hits", rule_name, n=len(bucket))
                    blocked = False
                    for wme in bucket:
                        if stats is not None:
                            stats.bump("join_checks", rule_name)
                        if _residual_pass(ce, wme, env, residual):
                            blocked = True
                            break
                    if not blocked:
                        next_partials.append((env, wmes + (None,)))
            else:
                # Candidates materialized lazily: if every partial died
                # upstream (or none survive to need them) the listing is
                # skipped entirely.
                candidates: Optional[Tuple[WME, ...]] = None
                for env, wmes in partials:
                    if candidates is None:
                        candidates = (
                            tuple(mem) if mem is not None else tuple(legacy(ce))
                        )
                    blocked = False
                    for wme in candidates:
                        if stats is not None:
                            stats.bump("join_checks", rule_name)
                        if not join_tests_pass(ce, wme, env):
                            continue
                        if ce.local_conds and not alpha_test_passes(
                            ce.local_conds, wme
                        ):
                            continue
                        blocked = True
                        break
                    if not blocked:
                        next_partials.append((env, wmes + (None,)))
        else:
            if fixed is not None and fixed[0] == ce.index:
                pinned = fixed[1]
                if (
                    pinned.class_name == ce.class_name
                    and alpha_test_passes(ce.alpha_conds, pinned)
                    and (
                        not ce.local_conds
                        or alpha_test_passes(ce.local_conds, pinned)
                    )
                ):
                    pinned_candidates: Tuple[WME, ...] = (pinned,)
                else:
                    pinned_candidates = ()
                for env, wmes in partials:
                    for wme in pinned_candidates:
                        if stats is not None:
                            stats.bump("join_probes", rule_name)
                        if not join_tests_pass(ce, wme, env):
                            continue
                        new_env = _extend_env(ce, wme, env)
                        if new_env is None:
                            continue
                        if stats is not None:
                            stats.bump("tokens", rule_name)
                        next_partials.append((new_env, wmes + (wme,)))
            elif probe_pairs:
                for env, wmes in partials:
                    if stats is not None:
                        stats.bump("hash_probes", rule_name)
                    bucket = mem.probe(
                        probe_attrs, tuple(env[v] for v in probe_vars)
                    )
                    if stats is not None and bucket:
                        stats.bump("bucket_hits", rule_name, n=len(bucket))
                    for wme in bucket:
                        if stats is not None:
                            stats.bump("join_probes", rule_name)
                        if not _residual_pass(ce, wme, env, residual):
                            continue
                        new_env = _extend_env(ce, wme, env)
                        if new_env is None:
                            continue
                        if stats is not None:
                            stats.bump("tokens", rule_name)
                        next_partials.append((new_env, wmes + (wme,)))
            else:
                scan = tuple(mem) if mem is not None else tuple(legacy(ce))
                for env, wmes in partials:
                    for wme in scan:
                        if stats is not None:
                            stats.bump("join_probes", rule_name)
                        if not join_tests_pass(ce, wme, env):
                            continue
                        if ce.local_conds and not alpha_test_passes(
                            ce.local_conds, wme
                        ):
                            continue
                        new_env = _extend_env(ce, wme, env)
                        if new_env is None:
                            continue
                        if stats is not None:
                            stats.bump("tokens", rule_name)
                        next_partials.append((new_env, wmes + (wme,)))
        partials = next_partials

    if plan is None:
        for env, wmes in partials:
            if stats is not None:
                stats.bump("instantiations", rule_name)
            yield Instantiation(compiled.rule, wmes, env)
        return

    # Restore original CE positions, then sort into the order the identity
    # enumeration yields: ascending lexicographic per-CE timestamp tuples.
    n = len(compiled.ces)
    restored: List[Tuple[Env, Tuple[Optional[WME], ...]]] = []
    for env, wmes in partials:
        slots: List[Optional[WME]] = [None] * n
        for pos, orig_idx in enumerate(plan.order):
            slots[orig_idx] = wmes[pos]
        restored.append((env, tuple(slots)))
    restored.sort(key=lambda item: tuple(_ts(w) for w in item[1]))
    for env, wmes in restored:
        if stats is not None:
            stats.bump("instantiations", rule_name)
        yield Instantiation(compiled.rule, wmes, env)
