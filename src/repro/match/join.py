"""A generic, seedable join enumerator over condition elements.

This is the semantic core shared by :class:`~repro.match.naive.NaiveMatcher`
(full enumeration) and :class:`~repro.match.treat.TreatMatcher` (delta-seeded
enumeration): walk the condition elements left to right, extending a set of
partial environments, checking negated CEs by absence.

Two seeding mechanisms make it reusable:

``fixed``
    pin condition element *i* to exactly one WME — TREAT's
    "the new WME must participate here" seed;
``seed_env``
    pre-bind variables — used when a WME matching a *negated* CE is
    retracted and we must discover the instantiations it was blocking.

``alpha_source`` abstracts where candidate WMEs come from, so TREAT can
supply its retained alpha memories while the naive matcher filters the
working memory on the fly.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, Iterator, List, Optional, Tuple

from repro.lang.ast import Value
from repro.match.compile import (
    CompiledCE,
    CompiledRule,
    alpha_test_passes,
    value_predicate,
)
from repro.match.instantiation import Instantiation
from repro.match.stats import MatchStats
from repro.wm.memory import WorkingMemory
from repro.wm.wme import WME

__all__ = ["enumerate_matches", "default_alpha_source", "join_tests_pass"]

Env = Dict[str, Value]
AlphaSource = Callable[[CompiledCE], Iterable[WME]]


def default_alpha_source(wm: WorkingMemory, stats: Optional[MatchStats] = None, rule: str = "") -> AlphaSource:
    """Alpha source that filters the working memory on every request."""

    def source(ce: CompiledCE) -> Iterator[WME]:
        for wme in wm.by_class(ce.class_name):
            if stats is not None:
                stats.bump("alpha_tests", rule)
            if alpha_test_passes(ce.alpha_conds, wme):
                yield wme

    return source


def join_tests_pass(ce: CompiledCE, wme: WME, env: Env) -> bool:
    """Evaluate a CE's environment-dependent tests for one candidate."""
    for attr, op, var in ce.join_tests:
        if not value_predicate(op, wme.get(attr), env[var]):
            return False
    return True


def _extend_env(ce: CompiledCE, wme: WME, env: Env) -> Optional[Env]:
    """Apply the CE's bindings; respects pre-seeded values as constraints.

    Returns the (possibly shared) environment, or ``None`` when a seeded
    binding disagrees with the WME.
    """
    if not ce.bindings:
        return env
    new_env: Optional[Env] = None
    for attr, var in ce.bindings:
        value = wme.get(attr)
        if var in env:
            if env[var] != value:
                return None
            continue
        if new_env is None:
            new_env = dict(env)
        new_env[var] = value
    return new_env if new_env is not None else env


def enumerate_matches(
    compiled: CompiledRule,
    wm: WorkingMemory,
    stats: Optional[MatchStats] = None,
    fixed: Optional[Tuple[int, WME]] = None,
    seed_env: Optional[Env] = None,
    alpha_source: Optional[AlphaSource] = None,
) -> Iterator[Instantiation]:
    """Yield every instantiation of ``compiled`` consistent with the seeds.

    ``fixed=(i, wme)`` pins 0-based CE index ``i`` (which must be positive)
    to ``wme``; the WME is still alpha- and join-tested, so passing a WME
    that does not actually match yields nothing rather than nonsense.
    """
    rule_name = compiled.name
    source = alpha_source or default_alpha_source(wm, stats, rule_name)

    # Each partial: (env, wmes) where wmes has one entry per CE so far.
    partials: List[Tuple[Env, Tuple[Optional[WME], ...]]] = [
        (dict(seed_env) if seed_env else {}, ())
    ]

    for ce in compiled.ces:
        if not partials:
            return
        next_partials: List[Tuple[Env, Tuple[Optional[WME], ...]]] = []
        if ce.negated:
            candidates = list(source(ce))
            for env, wmes in partials:
                blocked = False
                for wme in candidates:
                    if stats is not None:
                        stats.bump("join_checks", rule_name)
                    if join_tests_pass(ce, wme, env):
                        blocked = True
                        break
                if not blocked:
                    next_partials.append((env, wmes + (None,)))
        else:
            if fixed is not None and fixed[0] == ce.index:
                pinned = fixed[1]
                if pinned.class_name == ce.class_name and alpha_test_passes(
                    ce.alpha_conds, pinned
                ):
                    candidates = [pinned]
                else:
                    candidates = []
            else:
                candidates = list(source(ce))
            for env, wmes in partials:
                for wme in candidates:
                    if stats is not None:
                        stats.bump("join_probes", rule_name)
                    if not join_tests_pass(ce, wme, env):
                        continue
                    new_env = _extend_env(ce, wme, env)
                    if new_env is None:
                        continue
                    if stats is not None:
                        stats.bump("tokens", rule_name)
                    next_partials.append((new_env, wmes + (wme,)))
        partials = next_partials

    for env, wmes in partials:
        if stats is not None:
            stats.bump("instantiations", rule_name)
        yield Instantiation(compiled.rule, wmes, env)
