"""RETE network nodes: tokens, alpha memories, join/negative/production nodes.

Terminology follows Forgy/Doorenbos, with one structural simplification: a
join node and the beta memory holding its results are fused into a single
:class:`JoinBetaNode` (each rule's network is a linear chain, so the split
buys nothing). Deletion bookkeeping is index-based:

- ``_by_parent``: parent-token key → keys of my tokens extending it,
- ``_by_wme``: WME → keys of my tokens whose last element it is
  (or, in a negative node, whose join-result set contains it).

Token keys are tuples of WME timestamps, globally unique per prefix, so keys
serve as stable identities across the whole chain.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.lang.ast import Value
from repro.match.compile import CompiledCE, alpha_test_passes, value_predicate
from repro.match.instantiation import ConflictSet, Instantiation
from repro.match.stats import MatchStats
from repro.wm.wme import WME

__all__ = [
    "Token",
    "AlphaMemory",
    "BetaNode",
    "JoinBetaNode",
    "NegativeNode",
    "ProductionNode",
]

TokenKey = Tuple[int, ...]


class Token:
    """A partial match: the WMEs of the positive CEs consumed so far plus
    the variable environment they induce."""

    __slots__ = ("key", "wmes", "env")

    def __init__(self, key: TokenKey, wmes: Tuple[WME, ...], env: Dict[str, Value]) -> None:
        self.key = key
        self.wmes = wmes
        self.env = env

    def __repr__(self) -> str:  # pragma: no cover - debug convenience
        return f"Token{self.key}"


#: The unique empty token seeding every rule chain.
DUMMY_TOKEN = Token((), (), {})


class AlphaMemory:
    """WMEs passing one alpha pattern, plus the beta nodes fed by it."""

    __slots__ = ("key", "conds", "wmes", "successors")

    def __init__(self, key, conds) -> None:
        self.key = key
        self.conds = conds
        self.wmes: Dict[WME, None] = {}
        self.successors: List[BetaNode] = []

    def add(self, wme: WME) -> None:
        self.wmes[wme] = None
        for node in self.successors:
            node.on_right_add(wme)

    def remove(self, wme: WME) -> None:
        if wme in self.wmes:  # values are None: membership, not pop-default
            del self.wmes[wme]
            for node in self.successors:
                node.on_right_remove(wme)

    def __len__(self) -> int:
        return len(self.wmes)


class BetaNode:
    """Base of the beta chain: token storage plus downstream plumbing."""

    def __init__(self, ce: CompiledCE, rule_name: str, stats: MatchStats) -> None:
        self.ce = ce
        self.rule_name = rule_name
        self.stats = stats
        #: Downstream beta nodes. Usually one; more when beta-prefix
        #: sharing lets several rules hang off one partial-match chain.
        self.children: List["BetaNode"] = []
        #: Active (propagated) tokens by key.
        self.tokens: Dict[TokenKey, Token] = {}
        #: parent key -> my token keys (left-removal cascade).
        self._by_parent: Dict[TokenKey, Set[TokenKey]] = {}
        #: WME -> my token keys (right-removal cascade).
        self._by_wme: Dict[WME, Set[TokenKey]] = {}

    # -- downstream propagation -------------------------------------------

    def _emit_add(self, token: Token) -> None:
        self.tokens[token.key] = token
        for child in self.children:
            child.on_left_add(token)

    def _emit_remove(self, key: TokenKey) -> None:
        token = self.tokens.pop(key, None)
        if token is not None:
            for child in self.children:
                child.on_left_remove(key)

    # -- interface ------------------------------------------------------------

    def on_left_add(self, token: Token) -> None:
        raise NotImplementedError

    def on_left_remove(self, key: TokenKey) -> None:
        raise NotImplementedError

    def on_right_add(self, wme: WME) -> None:
        raise NotImplementedError

    def on_right_remove(self, wme: WME) -> None:
        raise NotImplementedError


class JoinBetaNode(BetaNode):
    """Hash-equijoin of the left token stream with one alpha memory.

    Equality join tests form the hash key; remaining predicates filter the
    probed candidates. Result tokens extend the parent token with the
    matched WME and the CE's new bindings.
    """

    def __init__(
        self,
        ce: CompiledCE,
        rule_name: str,
        stats: MatchStats,
        alpha: AlphaMemory,
        is_head: bool,
    ) -> None:
        super().__init__(ce, rule_name, stats)
        self.alpha = alpha
        self.is_head = is_head
        self.eq_tests = ce.eq_join_tests  # ((attr, var), ...)
        self.other_tests = ce.other_join_tests
        self.bindings = ce.bindings
        #: right hash index: wme key values -> ordered set of WMEs.
        self._right_index: Dict[Tuple[Value, ...], Dict[WME, None]] = {}
        #: left hash index: token key values -> set of parent token keys.
        self._left_index: Dict[Tuple[Value, ...], Dict[TokenKey, Token]] = {}
        #: parent token key -> its hash-key values (O(1) left removal).
        self._left_key_values: Dict[TokenKey, Tuple[Value, ...]] = {}
        #: child token key -> (parent key, wme) for index cleanup.
        self._child_info: Dict[TokenKey, Tuple[TokenKey, WME]] = {}
        alpha.successors.append(self)

    # -- keys ------------------------------------------------------------------

    def _wme_key(self, wme: WME) -> Tuple[Value, ...]:
        return tuple(wme.get(attr) for attr, _var in self.eq_tests)

    def _token_key_values(self, token: Token) -> Tuple[Value, ...]:
        env = token.env
        return tuple(env[var] for _attr, var in self.eq_tests)

    # -- pairing ---------------------------------------------------------------

    def _passes_other(self, token: Token, wme: WME) -> bool:
        env = token.env
        for attr, op, var in self.other_tests:
            self.stats.bump("join_checks", self.rule_name)
            if not value_predicate(op, wme.get(attr), env[var]):
                return False
        return True

    def _make_child_token(self, token: Token, wme: WME) -> Token:
        env = dict(token.env) if self.bindings else token.env
        for attr, var in self.bindings:
            env[var] = wme.get(attr)
        key = token.key + (wme.timestamp,)
        self.stats.bump("tokens", self.rule_name)
        return Token(key, token.wmes + (wme,), env)

    def _pair(self, token: Token, wme: WME) -> None:
        child_token = self._make_child_token(token, wme)
        self._by_parent.setdefault(token.key, set()).add(child_token.key)
        self._by_wme.setdefault(wme, set()).add(child_token.key)
        self._child_info[child_token.key] = (token.key, wme)
        self._emit_add(child_token)

    def _remove_child(self, child_key: TokenKey) -> None:
        info = self._child_info.pop(child_key, None)
        if info is None:
            return
        parent_key, wme = info
        siblings = self._by_parent.get(parent_key)
        if siblings is not None:
            siblings.discard(child_key)
            if not siblings:
                del self._by_parent[parent_key]
        cousins = self._by_wme.get(wme)
        if cousins is not None:
            cousins.discard(child_key)
            if not cousins:
                del self._by_wme[wme]
        self.stats.bump("retractions", self.rule_name)
        self._emit_remove(child_key)

    # -- left activation ---------------------------------------------------------

    def on_left_add(self, token: Token) -> None:
        key_values = self._token_key_values(token)
        self._left_index.setdefault(key_values, {})[token.key] = token
        self._left_key_values[token.key] = key_values
        bucket = self._right_index.get(key_values)
        if bucket:
            for wme in list(bucket):
                self.stats.bump("join_probes", self.rule_name)
                if self._passes_other(token, wme):
                    self._pair(token, wme)

    def on_left_remove(self, key: TokenKey) -> None:
        key_values = self._left_key_values.pop(key, None)
        if key_values is not None:
            bucket = self._left_index.get(key_values)
            if bucket is not None:
                bucket.pop(key, None)
                if not bucket:
                    del self._left_index[key_values]
        for child_key in list(self._by_parent.get(key, ())):
            self._remove_child(child_key)

    # -- right activation ----------------------------------------------------------

    def on_right_add(self, wme: WME) -> None:
        key_values = self._wme_key(wme)
        self._right_index.setdefault(key_values, {})[wme] = None
        bucket = self._left_index.get(key_values)
        if bucket:
            for token in list(bucket.values()):
                self.stats.bump("join_probes", self.rule_name)
                if self._passes_other(token, wme):
                    self._pair(token, wme)

    def on_right_remove(self, wme: WME) -> None:
        key_values = self._wme_key(wme)
        bucket = self._right_index.get(key_values)
        if bucket is not None:
            bucket.pop(wme, None)
            if not bucket:
                del self._right_index[key_values]
        for child_key in list(self._by_wme.get(wme, ())):
            self._remove_child(child_key)


class NegativeNode(BetaNode):
    """Negated condition element: a token is active while its join-result
    count against the alpha memory is zero.

    Tokens pass through unchanged (negated CEs bind nothing); ``owned`` holds
    every left token, ``tokens`` (inherited) only the active subset.
    """

    def __init__(
        self,
        ce: CompiledCE,
        rule_name: str,
        stats: MatchStats,
        alpha: AlphaMemory,
    ) -> None:
        super().__init__(ce, rule_name, stats)
        self.alpha = alpha
        self.eq_tests = ce.eq_join_tests
        self.other_tests = ce.other_join_tests
        self.owned: Dict[TokenKey, Token] = {}
        #: token key -> set of WMEs currently matching (blocking) it.
        self._jr: Dict[TokenKey, Set[WME]] = {}
        self._left_index: Dict[Tuple[Value, ...], Dict[TokenKey, Token]] = {}
        self._right_index: Dict[Tuple[Value, ...], Dict[WME, None]] = {}
        alpha.successors.append(self)

    def _wme_key(self, wme: WME) -> Tuple[Value, ...]:
        return tuple(wme.get(attr) for attr, _var in self.eq_tests)

    def _token_key_values(self, token: Token) -> Tuple[Value, ...]:
        env = token.env
        return tuple(env[var] for _attr, var in self.eq_tests)

    def _passes_other(self, token: Token, wme: WME) -> bool:
        env = token.env
        for attr, op, var in self.other_tests:
            self.stats.bump("join_checks", self.rule_name)
            if not value_predicate(op, wme.get(attr), env[var]):
                return False
        return True

    # -- left ------------------------------------------------------------------

    def on_left_add(self, token: Token) -> None:
        self.owned[token.key] = token
        key_values = self._token_key_values(token)
        self._left_index.setdefault(key_values, {})[token.key] = token
        blockers: Set[WME] = set()
        bucket = self._right_index.get(key_values)
        if bucket:
            for wme in bucket:
                self.stats.bump("join_probes", self.rule_name)
                if self._passes_other(token, wme):
                    blockers.add(wme)
        self._jr[token.key] = blockers
        for wme in blockers:
            self._by_wme.setdefault(wme, set()).add(token.key)
        if not blockers:
            self._emit_add(token)

    def on_left_remove(self, key: TokenKey) -> None:
        token = self.owned.pop(key, None)
        if token is None:
            return
        key_values = self._token_key_values(token)
        bucket = self._left_index.get(key_values)
        if bucket is not None:
            bucket.pop(key, None)
            if not bucket:
                del self._left_index[key_values]
        for wme in self._jr.pop(key, ()):
            keys = self._by_wme.get(wme)
            if keys is not None:
                keys.discard(key)
        self._emit_remove(key)

    # -- right ------------------------------------------------------------------

    def on_right_add(self, wme: WME) -> None:
        key_values = self._wme_key(wme)
        self._right_index.setdefault(key_values, {})[wme] = None
        bucket = self._left_index.get(key_values)
        if not bucket:
            return
        for token in list(bucket.values()):
            self.stats.bump("join_probes", self.rule_name)
            if not self._passes_other(token, wme):
                continue
            blockers = self._jr[token.key]
            was_empty = not blockers
            blockers.add(wme)
            self._by_wme.setdefault(wme, set()).add(token.key)
            if was_empty:
                self._emit_remove(token.key)

    def on_right_remove(self, wme: WME) -> None:
        key_values = self._wme_key(wme)
        bucket = self._right_index.get(key_values)
        if bucket is not None:
            bucket.pop(wme, None)
            if not bucket:
                del self._right_index[key_values]
        for key in self._by_wme.pop(wme, ()):
            blockers = self._jr.get(key)
            if blockers is None:
                continue
            blockers.discard(wme)
            if not blockers:
                token = self.owned.get(key)
                if token is not None:
                    self._emit_add(token)


class ProductionNode(BetaNode):
    """Chain terminal: full tokens become conflict-set instantiations."""

    def __init__(
        self,
        compiled_ces: Tuple[CompiledCE, ...],
        rule,
        stats: MatchStats,
        conflict_set: ConflictSet,
    ) -> None:
        # ProductionNode has no CE of its own; reuse the last one for repr.
        super().__init__(compiled_ces[-1], rule.name, stats)
        self.rule = rule
        self.ces = compiled_ces
        self.conflict_set = conflict_set
        self._inst_keys: Dict[TokenKey, Instantiation] = {}

    def on_left_add(self, token: Token) -> None:
        wmes: List[Optional[WME]] = []
        it = iter(token.wmes)
        for ce in self.ces:
            wmes.append(None if ce.negated else next(it))
        inst = Instantiation(self.rule, tuple(wmes), token.env)
        self._inst_keys[token.key] = inst
        self.conflict_set.add(inst)
        self.stats.bump("instantiations", self.rule_name)

    def on_left_remove(self, key: TokenKey) -> None:
        inst = self._inst_keys.pop(key, None)
        if inst is not None:
            self.conflict_set.discard_key(inst.key)
            self.stats.bump("retractions", self.rule_name)

    def on_right_add(self, wme: WME) -> None:  # pragma: no cover
        raise AssertionError("production nodes have no right input")

    def on_right_remove(self, wme: WME) -> None:  # pragma: no cover
        raise AssertionError("production nodes have no right input")
