"""RETE match engine (Forgy 1982, hash-indexed variant).

The network is compiled once per matcher from the shared
:mod:`repro.match.compile` form:

- **alpha memories** — one per distinct ``(class, WME-local tests)`` pattern,
  shared across condition elements and rules;
- **join/beta nodes** — one linear chain per rule, each node storing its
  result tokens and probing hash indexes built over the equality join tests
  (so equijoins cost O(matches), not O(|left|·|right|));
- **negative nodes** — maintain per-token join-result counts for negated
  condition elements, activating a token exactly while its count is zero;
- **production nodes** — convert complete tokens into
  :class:`~repro.match.instantiation.Instantiation` objects in the shared
  conflict set.

Both WME addition and removal are fully incremental; removal uses per-node
``by-parent`` and ``by-WME`` indexes rather than parent/child object graphs,
which keeps deletion O(tokens removed).
"""

from repro.match.rete.network import ReteMatcher, SharedReteMatcher

__all__ = ["ReteMatcher", "SharedReteMatcher"]
