"""RETE network assembly and the :class:`ReteMatcher` front end.

Network layout: one shared alpha layer (alpha memories keyed by the compiled
alpha pattern, looked up through a per-class index so a WME only visits
patterns of its own class), and one linear beta chain per rule ending in a
production node that maintains the shared conflict set.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.match.compile import AlphaKey, CompiledRule, alpha_test_passes
from repro.match.interface import Matcher
from repro.match.rete.nodes import (
    DUMMY_TOKEN,
    AlphaMemory,
    BetaNode,
    JoinBetaNode,
    NegativeNode,
    ProductionNode,
)
from repro.wm.wme import WME

__all__ = ["ReteMatcher"]


class ReteMatcher(Matcher):
    """Incremental matcher backed by a hash-indexed RETE network.

    With :attr:`share_beta` (the ``rete-shared`` variant), rules that begin
    with identical condition-element prefixes share the beta nodes of that
    prefix — the classic network optimization. Sharing requires structural
    identity: same alpha pattern, same negation, same bindings and join
    tests, same parent node. Per-rule statistics attribute a shared node's
    work to the first rule that built it (documented; Ablation A5 measures
    the state/work savings).
    """

    name = "rete"
    #: Share structurally identical beta prefixes across rules.
    share_beta = False

    def _build(self) -> None:
        self._alpha: Dict[AlphaKey, AlphaMemory] = {}
        self._by_class: Dict[str, List[AlphaMemory]] = {}
        self._productions: List[ProductionNode] = []
        #: (parent node id, CE signature) -> shared beta node.
        self._beta_cache: Dict[tuple, BetaNode] = {}
        self.shared_nodes = 0
        for compiled in self.compiled:
            self._build_rule_chain(compiled)

    # -- construction ------------------------------------------------------

    def _alpha_memory(self, key: AlphaKey, conds) -> AlphaMemory:
        mem = self._alpha.get(key)
        if mem is None:
            mem = AlphaMemory(key, conds)
            self._alpha[key] = mem
            self._by_class.setdefault(key[0], []).append(mem)
        return mem

    def _build_rule_chain(self, compiled: CompiledRule) -> None:
        # Construction happens before any WME exists (the base class
        # replays working memory afterwards), so appending children to a
        # shared prefix never needs token catch-up.
        parent: BetaNode | None = None
        for ce in compiled.ces:
            signature = (
                id(parent),
                ce.alpha_key,
                ce.negated,
                ce.bindings,
                ce.join_tests,
            )
            node = self._beta_cache.get(signature) if self.share_beta else None
            if node is not None:
                self.shared_nodes += 1
            else:
                mem = self._alpha_memory(ce.alpha_key, ce.alpha_conds)
                if ce.negated:
                    node = NegativeNode(ce, compiled.name, self.stats, mem)
                else:
                    node = JoinBetaNode(
                        ce, compiled.name, self.stats, mem, is_head=parent is None
                    )
                if parent is None:
                    # Seed the chain head with the empty token (its right
                    # memory is empty at build time: primes the left index).
                    node.on_left_add(DUMMY_TOKEN)
                else:
                    parent.children.append(node)
                if self.share_beta:
                    self._beta_cache[signature] = node
            parent = node
        production = ProductionNode(
            compiled.ces, compiled.rule, self.stats, self.conflict_set
        )
        assert parent is not None  # rules always have >= 1 CE
        parent.children.append(production)
        self._productions.append(production)

    # -- incremental maintenance ------------------------------------------------

    def _on_add(self, wme: WME) -> None:
        for mem in self._by_class.get(wme.class_name, ()):
            self.stats.bump("alpha_tests")
            if alpha_test_passes(mem.conds, wme):
                mem.add(wme)

    def _on_remove(self, wme: WME) -> None:
        for mem in self._by_class.get(wme.class_name, ()):
            mem.remove(wme)

    # -- introspection (used by tests and reports) --------------------------------

    @property
    def alpha_memory_count(self) -> int:
        return len(self._alpha)

    def alpha_sizes(self) -> Dict[AlphaKey, int]:
        return {key: len(mem) for key, mem in self._alpha.items()}

    def token_count(self) -> int:
        """Total retained beta tokens — RETE's state footprint, compared
        against TREAT's (zero) in Ablation A2. Every beta node is a
        successor of exactly one alpha memory, so that walk covers them all."""
        total = 0
        seen = set()
        for mem in self._alpha.values():
            for node in mem.successors:
                if id(node) not in seen:
                    seen.add(id(node))
                    total += len(node.tokens)
        return total


class SharedReteMatcher(ReteMatcher):
    """RETE with beta-prefix sharing enabled (``rete-shared``)."""

    name = "rete-shared"
    share_beta = True
