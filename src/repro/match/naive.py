"""The naive (reference) matcher.

Recomputes every rule's join from scratch whenever the conflict set is
requested after a working-memory change. O(product of class-bucket sizes)
per rule — unusable for big programs, invaluable as the semantic oracle:
property-based tests assert RETE and TREAT always agree with it.

By default recomputation runs over a persistent shared
:class:`~repro.match.alphaindex.AlphaCache` — alpha memories are filtered
once and maintained incrementally (``alpha_tests`` drop from
per-recompute-scan to per-delta), and joins probe hash buckets following
each rule's join plan. ``indexed=False`` restores the historical
filter-per-request nested-loop path exactly.
"""

from __future__ import annotations

from typing import List

from repro.match.alphaindex import AlphaCache
from repro.match.instantiation import Instantiation
from repro.match.interface import Matcher
from repro.match.join import enumerate_matches
from repro.wm.wme import WME

__all__ = ["NaiveMatcher"]


class NaiveMatcher(Matcher):
    """Full recomputation matcher; the semantics oracle."""

    name = "naive"

    def _build(self) -> None:
        self._dirty = True
        # Maintained from our own _on_add/_on_remove (the base class replays
        # pre-existing WMEs through the same path), not a second listener.
        self._alpha = AlphaCache(self.wm, self.stats) if self.indexed else None

    def _on_add(self, wme: WME) -> None:
        self._dirty = True
        if self._alpha is not None:
            self._alpha.apply(wme, True)

    def _on_remove(self, wme: WME) -> None:
        self._dirty = True
        if self._alpha is not None:
            self._alpha.apply(wme, False)

    def _recompute(self) -> None:
        self.conflict_set.clear()
        for compiled in self.compiled:
            for inst in enumerate_matches(
                compiled,
                self.wm,
                self.stats,
                alpha_source=self._alpha,
                indexed=self.indexed,
            ):
                self.conflict_set.add(inst)
        self._dirty = False

    def instantiations(self) -> List[Instantiation]:
        if self._dirty:
            self._recompute()
        return self.conflict_set.instantiations()
