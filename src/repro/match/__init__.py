"""Match engines: computing the conflict set incrementally.

The match phase dominates production-system runtime (the classic
McDermott/Forgy observation that motivated RETE, and the DADO/TREAT work in
PARULEL's lineage). This package provides three engines behind one
interface:

- :class:`~repro.match.naive.NaiveMatcher` — recomputes every rule's join
  from scratch on demand. Slow, obviously correct: the semantic reference
  that RETE and TREAT are differentially tested against.
- :class:`~repro.match.rete.ReteMatcher` — a RETE network with shared,
  hash-indexed alpha memories, hash-equijoin beta nodes, and negative nodes;
  fully incremental under WME addition and removal.
- :class:`~repro.match.treat.TreatMatcher` — TREAT (Miranker): alpha
  memories plus a retained conflict set, join work seeded by each WME delta.
  No beta memories, so cheaper under high WM churn — the trade-off
  Ablation A2 measures.

All engines consume the *compiled* rule form produced by
:mod:`repro.match.compile`, so they agree exactly on test semantics.
"""

from repro.match.compile import CompiledCE, CompiledRule, compile_rule, compile_rules
from repro.match.instantiation import ConflictSet, Instantiation
from repro.match.interface import Matcher, create_matcher
from repro.match.naive import NaiveMatcher
from repro.match.rete import ReteMatcher
from repro.match.stats import MatchStats
from repro.match.treat import TreatMatcher

__all__ = [
    "CompiledCE",
    "CompiledRule",
    "ConflictSet",
    "Instantiation",
    "MatchStats",
    "Matcher",
    "NaiveMatcher",
    "ReteMatcher",
    "TreatMatcher",
    "compile_rule",
    "compile_rules",
    "create_matcher",
]
