"""Hash-indexed alpha memories shared by the enumerating matchers.

An :class:`IndexedMemory` is an insertion-ordered set of WMEs that lazily
builds hash indexes keyed by attribute tuples — the attributes that appear
in downstream equality join tests. ``probe(attrs, values)`` then returns
the bucket of WMEs whose attributes equal ``values`` instead of the whole
memory, and the enumerator only filters that bucket with the remaining
(non-equality) tests.

Order is the load-bearing invariant: memories are fed in timestamp order
(working-memory replay and listener order), buckets preserve insertion
order, so probing yields exactly the subsequence a full scan would. That is
what keeps the indexed enumeration byte-identical to the nested-loop path —
the differential tests enforce it.

Two front-ends feed the enumerator:

:class:`AlphaCache`
    shared, lazily-primed memories over a :class:`~repro.wm.memory.WorkingMemory`
    — used by :class:`~repro.match.naive.NaiveMatcher` (replacing the
    re-filter-per-request ``default_alpha_source``) and, held persistently,
    by the threaded/process match pools (worker side rebuilt from shipped
    deltas via the replica WM's listener);
:class:`MemoryTable`
    a thin adapter over an existing ``AlphaKey -> IndexedMemory`` dict —
    TREAT's retained alpha memories.
"""

from __future__ import annotations

import struct
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.match.compile import AlphaKey, CompiledCE, alpha_test_passes, value_predicate
from repro.match.stats import MatchStats
from repro.wm.memory import WorkingMemory
from repro.wm.wme import NIL, WME

__all__ = [
    "IndexedMemory",
    "AlphaCache",
    "MemoryTable",
    "ColumnProbeIndex",
    "ColumnMemory",
    "ColumnVectorCache",
]

#: An index key: the probed attribute names, in probe order.
IndexAttrs = Tuple[str, ...]


class IndexedMemory:
    """Insertion-ordered WME set with lazily-built hash indexes.

    Each index maps an attribute tuple to ``values-tuple -> ordered bucket``.
    Indexes are built on first probe of that attribute tuple and maintained
    incrementally afterwards. Buckets are insertion-ordered dicts, so a
    probe returns the same subsequence a scan of :attr:`wmes` would.

    Thread note: concurrent lazy builds (threaded pool) each construct a
    complete local index before installing it, so readers only ever see a
    finished index; duplicate builds produce identical contents and the
    last install wins.
    """

    __slots__ = ("wmes", "_indexes")

    def __init__(self) -> None:
        #: Ordered set of member WMEs (values unused — membership + order).
        self.wmes: Dict[WME, None] = {}
        self._indexes: Dict[IndexAttrs, Dict[Tuple, Dict[WME, None]]] = {}

    def add(self, wme: WME) -> None:
        self.wmes[wme] = None
        for attrs, index in self._indexes.items():
            key = tuple(wme.get(a) for a in attrs)
            bucket = index.get(key)
            if bucket is None:
                bucket = index[key] = {}
            bucket[wme] = None

    def bulk_add(self, wmes: Sequence[WME]) -> None:
        """Add many WMEs at once, preserving their order.

        The hot case is priming a fresh memory (no indexes built yet) over
        a large class bucket — one C-level dict update instead of a Python
        call per WME, which is what makes attaching a million-WME store
        tolerable. With indexes already built it falls back to per-WME
        maintenance.
        """
        if not self._indexes:
            self.wmes.update(dict.fromkeys(wmes))
            return
        for wme in wmes:
            self.add(wme)

    def remove(self, wme: WME) -> bool:
        """Drop ``wme``; returns whether it was a member."""
        if wme not in self.wmes:
            return False
        del self.wmes[wme]
        for attrs, index in self._indexes.items():
            key = tuple(wme.get(a) for a in attrs)
            bucket = index.get(key)
            if bucket is not None:
                bucket.pop(wme, None)
                if not bucket:
                    del index[key]
        return True

    def _index_for(self, attrs: IndexAttrs) -> Dict[Tuple, Dict[WME, None]]:
        index = self._indexes.get(attrs)
        if index is None:
            index = {}
            for wme in self.wmes:
                key = tuple(wme.get(a) for a in attrs)
                bucket = index.get(key)
                if bucket is None:
                    bucket = index[key] = {}
                bucket[wme] = None
            self._indexes[attrs] = index
        return index

    def probe(self, attrs: IndexAttrs, values: Tuple) -> Sequence[WME]:
        """WMEs whose ``attrs`` equal ``values``, in insertion order."""
        bucket = self._index_for(attrs).get(values)
        return tuple(bucket) if bucket else ()

    def probe_exists(self, attrs: IndexAttrs, values: Tuple) -> bool:
        """Bucket non-emptiness without materializing it — the negated-CE
        existence check when no residual tests remain (empty buckets are
        deleted on remove, so membership means at least one WME)."""
        return bool(self._index_for(attrs).get(values))

    @property
    def index_count(self) -> int:
        return len(self._indexes)

    def __contains__(self, wme: WME) -> bool:
        return wme in self.wmes

    def __len__(self) -> int:
        return len(self.wmes)

    def __iter__(self) -> Iterator[WME]:
        return iter(self.wmes)


class MemoryTable:
    """Adapter exposing an ``AlphaKey -> IndexedMemory`` dict (TREAT's
    retained memories) as an enumerator alpha source."""

    __slots__ = ("_mems",)

    def __init__(self, mems: Dict[AlphaKey, IndexedMemory]) -> None:
        self._mems = mems

    def memory(self, ce: CompiledCE) -> IndexedMemory:
        return self._mems[ce.alpha_key]


class AlphaCache:
    """Shared alpha memories over a working memory, lazily primed.

    ``memory(ce)`` returns the :class:`IndexedMemory` for the CE's alpha
    key, building it from the current WM contents on first request (in
    timestamp order). Afterwards the cache must be kept current — either
    by calling :meth:`apply` from the owner's own WM listener (the naive
    matcher does this so replay and live updates share one path) or by
    :meth:`attach`-ing the cache's own listener (the match pools do).

    ``alpha_tests`` are bumped once per WME per alpha pattern at prime time
    and on each relevant add — not per enumeration request — and carry no
    per-rule attribution: the memories are shared across rules, so there is
    no single rule to charge (see :mod:`repro.match.stats`).
    """

    def __init__(self, wm: WorkingMemory, stats: Optional[MatchStats] = None) -> None:
        self.wm = wm
        self.stats = stats
        self._mems: Dict[AlphaKey, IndexedMemory] = {}
        self._keys_by_class: Dict[str, List[AlphaKey]] = {}
        self._attached = False

    # -- enumerator protocol -------------------------------------------------

    def memory(self, ce: CompiledCE) -> IndexedMemory:
        key = ce.alpha_key
        mem = self._mems.get(key)
        if mem is None:
            mem = IndexedMemory()
            bucket = self.wm.by_class(ce.class_name)
            if not ce.alpha_conds:
                # Unconditional alpha pattern (the common case for scale
                # workloads): the memory is the class bucket verbatim, so
                # prime it in bulk instead of testing WMEs one at a time.
                if self.stats is not None:
                    self.stats.bump("alpha_tests", n=len(bucket))
                mem.bulk_add(bucket)
            else:
                for wme in bucket:
                    if self.stats is not None:
                        self.stats.bump("alpha_tests")
                    if alpha_test_passes(ce.alpha_conds, wme):
                        mem.add(wme)
            self._mems[key] = mem
            self._keys_by_class.setdefault(ce.class_name, []).append(key)
        return mem

    # -- maintenance ---------------------------------------------------------

    def apply(self, wme: WME, added: bool) -> None:
        """Incorporate one WM event into every already-primed memory.

        Memories not yet primed pick the WME up at prime time instead.
        """
        for key in self._keys_by_class.get(wme.class_name, ()):
            mem = self._mems[key]
            if added:
                if self.stats is not None:
                    self.stats.bump("alpha_tests")
                if alpha_test_passes(key[1], wme):
                    mem.add(wme)
            else:
                mem.remove(wme)

    def _listener(self, wme: WME, added: bool) -> None:
        self.apply(wme, added)

    def attach(self) -> None:
        """Subscribe to the working memory's add/remove events."""
        if not self._attached:
            self.wm.add_listener(self._listener)
            self._attached = True

    def detach(self) -> None:
        if self._attached:
            self.wm.remove_listener(self._listener)
            self._attached = False


# ---------------------------------------------------------------------------
# Column-native alpha source (the vectorized probe kernel)
# ---------------------------------------------------------------------------
#
# The classes below are the third enumerator front-end: alpha memories held
# as *row ids* over a :class:`~repro.wm.columnar.ColumnarReader`'s shared
# ``(tag, payload)`` int64 columns, with WME objects built lazily — only for
# rows a probe or full scan actually surfaces. The columnar module is
# imported lazily so the default dict-backed path never touches
# ``multiprocessing.shared_memory``.
#
# Keying scheme: every storable value canonicalizes to one packed integer
# ``(kind << 64) | (payload & 0xFFFF..FF)`` chosen so that two stored cells
# (or a probe value and a stored cell) get equal keys exactly when Python
# ``==`` unifies them:
#
# - absent slots and the ``nil`` symbol share ``_KEY_NIL`` (``WME.get``
#   reads both as ``"nil"``);
# - bools and in-range ints share ``_K_INT`` (``True == 1``), and integral
#   floats in int64 range collapse into it too (``2.0 == 2``, and
#   ``-0.0`` lands on ``_K_INT|0`` with ``0.0``);
# - symbols/bigints key on their heap offset (the parent interns each text
#   once, so offset equality is text equality);
# - remaining floats key on their IEEE bits (equal non-integral finite
#   floats are bit-identical).
#
# Two escape hatches keep exotic values exact rather than fast: a stored
# cell with no faithful key (NaN, an integral float beyond int64 that may
# equal a stored bigint) goes to the index's *fallback rows*, re-checked by
# decoded ``==`` on every probe; a probe value with no packed key (a symbol
# the parent never interned — proof no stored symbol equals it — NaN, or an
# out-of-range integral) skips the bucket but still filters the fallback
# rows. Both are counted (``parulel_vector_probe_fallback_total``).

_U64 = (1 << 64) - 1
_I64_MIN = -(1 << 63)
_I64_MAX = (1 << 63) - 1
_INF = float("inf")

#: Packed key kinds (bits 64+). ``_KEY_NIL`` is the whole key for absent.
_KEY_NIL = 0
_K_INT = 1 << 64
_K_FLOAT = 2 << 64
_K_SYM = 3 << 64
_K_BIG = 4 << 64

# Columnar tag constants, loaded on first ColumnVectorCache construction
# (lazy import — see module note above).
_TAGS_LOADED = False
_T_ABSENT = _T_INT = _T_FLOAT = _T_SYM = _T_BIG = _T_BOOL = -1


def _load_columnar_tags() -> None:
    global _TAGS_LOADED, _T_ABSENT, _T_INT, _T_FLOAT, _T_SYM, _T_BIG, _T_BOOL
    if _TAGS_LOADED:
        return
    from repro.wm import columnar as _c

    _T_ABSENT, _T_INT, _T_FLOAT, _T_SYM, _T_BIG, _T_BOOL = (
        _c._ABSENT, _c._INT, _c._FLOAT, _c._SYM, _c._BIG, _c._BOOL,
    )
    _TAGS_LOADED = True


def _canon_cell(tag: int, payload: int, nil_off: Optional[int]) -> Optional[int]:
    """Packed key for one stored ``(tag, payload)`` cell, or ``None`` when
    the cell has no faithful key and its row must go to the fallback list."""
    if tag == _T_ABSENT:
        return _KEY_NIL
    if tag == _T_INT or tag == _T_BOOL:
        return _K_INT | (payload & _U64)
    if tag == _T_SYM:
        if payload == nil_off:
            return _KEY_NIL
        return _K_SYM | payload
    if tag == _T_BIG:
        return _K_BIG | payload
    # _T_FLOAT
    f = struct.unpack("<d", struct.pack("<q", payload))[0]
    if f != f:
        return None  # NaN: leave == semantics to the decoded fallback path
    if f == _INF or f == -_INF:
        return _K_FLOAT | (payload & _U64)
    i = int(f)
    if i == f:
        if _I64_MIN <= i <= _I64_MAX:
            return _K_INT | (i & _U64)
        return None  # integral beyond int64 — may equal a stored bigint
    return _K_FLOAT | (payload & _U64)


def _canon_probe(value, reader) -> Optional[int]:
    """Packed key for a probe value, or ``None`` when no packed bucket can
    match it (fallback rows are still filtered by decoded equality)."""
    if isinstance(value, bool):
        return _K_INT | int(value)
    if isinstance(value, int):
        if _I64_MIN <= value <= _I64_MAX:
            return _K_INT | (value & _U64)
        off = reader.offset_of(str(value))
        return None if off is None else _K_BIG | off
    if isinstance(value, float):
        if value != value:
            return None  # NaN
        if value == _INF or value == -_INF:
            bits = struct.unpack("<Q", struct.pack("<d", value))[0]
            return _K_FLOAT | bits
        i = int(value)
        if i == value:
            if _I64_MIN <= i <= _I64_MAX:
                return _K_INT | (i & _U64)
            off = reader.offset_of(str(i))
            return None if off is None else _K_BIG | off
        bits = struct.unpack("<Q", struct.pack("<d", value))[0]
        return _K_FLOAT | bits
    if isinstance(value, str):
        if value == NIL:
            return _KEY_NIL
        off = reader.offset_of(value)
        return None if off is None else _K_SYM | off
    return None


class ColumnProbeIndex:
    """Hash index over packed column keys for one attribute tuple of one
    :class:`ColumnMemory` — the column-native analogue of one
    :class:`IndexedMemory` index.

    Buckets map a packed key (one int, or a tuple of them for multi-attr
    probes) to an ascending member-row list; ascending rows = timestamp
    order = the object path's bucket order. Rows whose key is inexact live
    in :attr:`fallback` and are filtered by decoded ``==`` on every probe;
    a probe whose own key is unpacked skips the buckets but still scans the
    fallback list, and hits from both are merged back into row order.
    """

    __slots__ = ("mem", "attrs", "buckets", "fallback")

    def __init__(self, mem: "ColumnMemory", attrs: IndexAttrs) -> None:
        self.mem = mem
        self.attrs = attrs
        self.buckets: Dict[object, List[int]] = {}
        self.fallback: List[int] = []
        for row in mem.rows:
            self.insert(row)

    def _row_key(self, row: int):
        """Packed key of a member row, or ``None`` for a fallback row.
        Columns are re-fetched per call — memoryviews do not survive the
        table's re-mount on growth, so nothing here may be cached."""
        table = self.mem.table
        nil_off = self.mem.cache.reader.nil_offset()
        keys = []
        for attr in self.attrs:
            idx = table.col_of(attr)
            if idx is None:
                key = _KEY_NIL
            else:
                key = _canon_cell(
                    table.tag_cols[idx][row], table.payload_cols[idx][row], nil_off
                )
                if key is None:
                    return None
            keys.append(key)
        return keys[0] if len(keys) == 1 else tuple(keys)

    def insert(self, row: int) -> None:
        key = self._row_key(row)
        if key is None:
            self.fallback.append(row)
            return
        bucket = self.buckets.get(key)
        if bucket is None:
            self.buckets[key] = [row]
        else:
            bucket.append(row)

    def remove(self, row: int) -> None:
        key = self._row_key(row)  # rows are immutable: same key as insert
        if key is None:
            self.fallback.remove(row)
            return
        bucket = self.buckets.get(key)
        if bucket is not None:
            bucket.remove(row)
            if not bucket:
                del self.buckets[key]

    def probe_rows(self, values: Tuple) -> Sequence[int]:
        """Member rows whose attributes equal ``values``, ascending.
        Callers must not mutate the result (it may alias a bucket)."""
        cache = self.mem.cache
        reader = cache.reader
        keys = []
        unpacked = False
        for value in values:
            key = _canon_probe(value, reader)
            if key is None:
                unpacked = True
                break
            keys.append(key)
        packed: Sequence[int] = ()
        if not unpacked:
            packed = self.buckets.get(
                keys[0] if len(keys) == 1 else tuple(keys), ()
            )
        if not unpacked and not self.fallback:
            return packed
        cache.fallback_probes += 1
        table = self.mem.table
        resolve = reader._resolve
        hits: List[int] = []
        for row in self.fallback:
            for attr, value in zip(self.attrs, values):
                if table.cell(resolve, row, attr) != value:
                    break
            else:
                hits.append(row)
        if not hits:
            return packed
        if not packed:
            return hits
        merged: List[int] = []
        i = j = 0
        while i < len(packed) and j < len(hits):
            if packed[i] < hits[j]:
                merged.append(packed[i])
                i += 1
            else:
                merged.append(hits[j])
                j += 1
        merged.extend(packed[i:])
        merged.extend(hits[j:])
        return merged


class ColumnMemory:
    """One alpha memory evaluated directly over a reader table's columns.

    Members are row ids (an insertion-ordered dict used as an ordered set;
    per-class row order is timestamp order, so iteration and probe results
    match the object path's bucket order exactly). Alpha conditions are
    checked cell-by-cell (:meth:`~repro.wm.columnar._ReaderTable.cell`
    decodes one slot, no WME built); full iteration and probe survivors
    materialize through the cache's per-row memo.
    """

    __slots__ = ("cache", "table", "alpha_conds", "rows", "_indexes")

    def __init__(self, cache: "ColumnVectorCache", table, alpha_conds) -> None:
        self.cache = cache
        self.table = table
        self.alpha_conds = alpha_conds
        self.rows: Dict[int, None] = {}
        self._indexes: Dict[IndexAttrs, ColumnProbeIndex] = {}
        live = table.live_col
        known = table.rows_known
        if alpha_conds:
            ok = self._alpha_ok
            for row in range(known):
                if live[row] and ok(row):
                    self.rows[row] = None
        else:
            for row in range(known):
                if live[row]:
                    self.rows[row] = None
        cache.scanned_rows += known

    def _alpha_ok(self, row: int) -> bool:
        """``alpha_test_passes`` evaluated on cells instead of a WME."""
        table = self.table
        resolve = self.cache.reader._resolve
        for cond in self.alpha_conds:
            kind = cond[0]
            if kind == "const":
                _k, attr, op, value = cond
                if not value_predicate(op, table.cell(resolve, row, attr), value):
                    return False
            elif kind == "in":
                _k, attr, alternatives = cond
                if table.cell(resolve, row, attr) not in alternatives:
                    return False
            else:  # 'intra'
                _k, attr, op, other = cond
                if not value_predicate(
                    op,
                    table.cell(resolve, row, attr),
                    table.cell(resolve, row, other),
                ):
                    return False
        return True

    # -- maintenance (journal replay) ---------------------------------------

    def on_add(self, row: int) -> None:
        self.cache.scanned_rows += 1
        if self.alpha_conds and not self._alpha_ok(row):
            return
        self.rows[row] = None
        for index in self._indexes.values():
            index.insert(row)

    def on_remove(self, row: int) -> None:
        if row not in self.rows:
            return
        del self.rows[row]
        for index in self._indexes.values():
            index.remove(row)

    # -- enumerator protocol -------------------------------------------------

    def _index_for(self, attrs: IndexAttrs) -> ColumnProbeIndex:
        index = self._indexes.get(attrs)
        if index is None:
            index = self._indexes[attrs] = ColumnProbeIndex(self, attrs)
        return index

    def probe(self, attrs: IndexAttrs, values: Tuple) -> Sequence[WME]:
        cache = self.cache
        cache.probes += 1
        rows = self._index_for(attrs).probe_rows(values)
        if not rows:
            return ()
        wme_at = cache.wme_at
        table = self.table
        return tuple(wme_at(table, row) for row in rows)

    def probe_exists(self, attrs: IndexAttrs, values: Tuple) -> bool:
        """Bucket non-emptiness — no row decoded, no WME built."""
        self.cache.probes += 1
        return bool(self._index_for(attrs).probe_rows(values))

    def __contains__(self, row: int) -> bool:
        return row in self.rows

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self) -> Iterator[WME]:
        cache = self.cache
        table = self.table
        return (cache.wme_at(table, row) for row in self.rows)


class _EmptyColumnMemory:
    """Stand-in for a class no row was ever asserted for (no table yet).
    Never cached — the real memory is built once the class appears in a
    structural spec on the next refresh."""

    __slots__ = ()

    def probe(self, attrs: IndexAttrs, values: Tuple) -> Sequence[WME]:
        return ()

    def probe_exists(self, attrs: IndexAttrs, values: Tuple) -> bool:
        return False

    def __len__(self) -> int:
        return 0

    def __iter__(self) -> Iterator[WME]:
        return iter(())


_EMPTY_COLUMN_MEMORY = _EmptyColumnMemory()


class ColumnVectorCache:
    """Worker-side alpha source evaluated directly over shared columns.

    The vectorized-probe replacement for replica-WM + :class:`AlphaCache`
    in columnar workers: :meth:`refresh` advances the journal cursor
    without materializing (``refresh_raw``), memories scan the liveness and
    value columns, probes hash packed ``(tag, payload)`` keys, and WME
    objects are built lazily — memoized per row in the table's
    ``wme_by_row`` — only for rows a probe or full scan surfaces.

    Byte-identical conflict sets by construction: per-class row order is
    timestamp order, packed keys collapse exactly the values Python ``==``
    unifies (see the keying note above), and everything else falls back to
    decoded comparison. Reads assume the parent is quiescent up to the row
    high-water marks carried by the specs/journal — the same contract the
    eager ``attach``/``refresh`` path relies on.
    """

    def __init__(self, reader) -> None:
        _load_columnar_tags()
        self.reader = reader
        self._mems: Dict[AlphaKey, ColumnMemory] = {}
        self._mems_by_cid: Dict[int, List[ColumnMemory]] = {}
        #: Work counters, cumulative per process; the pool ships per-cycle
        #: deltas back through the observability payload.
        self.scanned_rows = 0
        self.materialized = 0
        self.fallback_probes = 0
        self.probes = 0

    # -- enumerator protocol -------------------------------------------------

    def memory(self, ce: CompiledCE):
        mem = self._mems.get(ce.alpha_key)
        if mem is None:
            cid = self.reader.cid_of(ce.class_name)
            if cid is None:
                return _EMPTY_COLUMN_MEMORY
            mem = ColumnMemory(self, self.reader.table(cid), ce.alpha_conds)
            self._mems[ce.alpha_key] = mem
            self._mems_by_cid.setdefault(cid, []).append(mem)
        return mem

    # -- maintenance ---------------------------------------------------------

    def refresh(self, info: Tuple) -> int:
        """Apply a cycle's journal records to every primed memory; returns
        the number of records applied. No WME is built here."""
        return self.reader.refresh_raw(info, self._on_record)

    def _on_record(self, added: bool, cid: int, row: int) -> None:
        mems = self._mems_by_cid.get(cid)
        if added:
            if mems:
                for mem in mems:
                    mem.on_add(row)
            return
        table = self.reader.table(cid)
        if table is not None:
            table.wme_by_row.pop(row, None)  # rows never recycle; drop memo
        if mems:
            for mem in mems:
                mem.on_remove(row)

    # -- lazy materialization ------------------------------------------------

    def wme_at(self, table, row: int) -> WME:
        """The row's WME, built on first need and memoized (probes that
        surface the same row across cycles decode it once)."""
        wme = table.wme_by_row.get(row)
        if wme is None:
            wme = table.materialize(self.reader._resolve, row)
            table.wme_by_row[row] = wme
            self.materialized += 1
        return wme

    def counters(self) -> Dict[str, int]:
        return {
            "scanned": self.scanned_rows,
            "materialized": self.materialized,
            "fallback": self.fallback_probes,
            "probes": self.probes,
        }
