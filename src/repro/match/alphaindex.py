"""Hash-indexed alpha memories shared by the enumerating matchers.

An :class:`IndexedMemory` is an insertion-ordered set of WMEs that lazily
builds hash indexes keyed by attribute tuples — the attributes that appear
in downstream equality join tests. ``probe(attrs, values)`` then returns
the bucket of WMEs whose attributes equal ``values`` instead of the whole
memory, and the enumerator only filters that bucket with the remaining
(non-equality) tests.

Order is the load-bearing invariant: memories are fed in timestamp order
(working-memory replay and listener order), buckets preserve insertion
order, so probing yields exactly the subsequence a full scan would. That is
what keeps the indexed enumeration byte-identical to the nested-loop path —
the differential tests enforce it.

Two front-ends feed the enumerator:

:class:`AlphaCache`
    shared, lazily-primed memories over a :class:`~repro.wm.memory.WorkingMemory`
    — used by :class:`~repro.match.naive.NaiveMatcher` (replacing the
    re-filter-per-request ``default_alpha_source``) and, held persistently,
    by the threaded/process match pools (worker side rebuilt from shipped
    deltas via the replica WM's listener);
:class:`MemoryTable`
    a thin adapter over an existing ``AlphaKey -> IndexedMemory`` dict —
    TREAT's retained alpha memories.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.match.compile import AlphaKey, CompiledCE, alpha_test_passes
from repro.match.stats import MatchStats
from repro.wm.memory import WorkingMemory
from repro.wm.wme import WME

__all__ = ["IndexedMemory", "AlphaCache", "MemoryTable"]

#: An index key: the probed attribute names, in probe order.
IndexAttrs = Tuple[str, ...]


class IndexedMemory:
    """Insertion-ordered WME set with lazily-built hash indexes.

    Each index maps an attribute tuple to ``values-tuple -> ordered bucket``.
    Indexes are built on first probe of that attribute tuple and maintained
    incrementally afterwards. Buckets are insertion-ordered dicts, so a
    probe returns the same subsequence a scan of :attr:`wmes` would.

    Thread note: concurrent lazy builds (threaded pool) each construct a
    complete local index before installing it, so readers only ever see a
    finished index; duplicate builds produce identical contents and the
    last install wins.
    """

    __slots__ = ("wmes", "_indexes")

    def __init__(self) -> None:
        #: Ordered set of member WMEs (values unused — membership + order).
        self.wmes: Dict[WME, None] = {}
        self._indexes: Dict[IndexAttrs, Dict[Tuple, Dict[WME, None]]] = {}

    def add(self, wme: WME) -> None:
        self.wmes[wme] = None
        for attrs, index in self._indexes.items():
            key = tuple(wme.get(a) for a in attrs)
            bucket = index.get(key)
            if bucket is None:
                bucket = index[key] = {}
            bucket[wme] = None

    def bulk_add(self, wmes: Sequence[WME]) -> None:
        """Add many WMEs at once, preserving their order.

        The hot case is priming a fresh memory (no indexes built yet) over
        a large class bucket — one C-level dict update instead of a Python
        call per WME, which is what makes attaching a million-WME store
        tolerable. With indexes already built it falls back to per-WME
        maintenance.
        """
        if not self._indexes:
            self.wmes.update(dict.fromkeys(wmes))
            return
        for wme in wmes:
            self.add(wme)

    def remove(self, wme: WME) -> bool:
        """Drop ``wme``; returns whether it was a member."""
        if wme not in self.wmes:
            return False
        del self.wmes[wme]
        for attrs, index in self._indexes.items():
            key = tuple(wme.get(a) for a in attrs)
            bucket = index.get(key)
            if bucket is not None:
                bucket.pop(wme, None)
                if not bucket:
                    del index[key]
        return True

    def probe(self, attrs: IndexAttrs, values: Tuple) -> Sequence[WME]:
        """WMEs whose ``attrs`` equal ``values``, in insertion order."""
        index = self._indexes.get(attrs)
        if index is None:
            index = {}
            for wme in self.wmes:
                key = tuple(wme.get(a) for a in attrs)
                bucket = index.get(key)
                if bucket is None:
                    bucket = index[key] = {}
                bucket[wme] = None
            self._indexes[attrs] = index
        bucket = index.get(values)
        return tuple(bucket) if bucket else ()

    @property
    def index_count(self) -> int:
        return len(self._indexes)

    def __contains__(self, wme: WME) -> bool:
        return wme in self.wmes

    def __len__(self) -> int:
        return len(self.wmes)

    def __iter__(self) -> Iterator[WME]:
        return iter(self.wmes)


class MemoryTable:
    """Adapter exposing an ``AlphaKey -> IndexedMemory`` dict (TREAT's
    retained memories) as an enumerator alpha source."""

    __slots__ = ("_mems",)

    def __init__(self, mems: Dict[AlphaKey, IndexedMemory]) -> None:
        self._mems = mems

    def memory(self, ce: CompiledCE) -> IndexedMemory:
        return self._mems[ce.alpha_key]


class AlphaCache:
    """Shared alpha memories over a working memory, lazily primed.

    ``memory(ce)`` returns the :class:`IndexedMemory` for the CE's alpha
    key, building it from the current WM contents on first request (in
    timestamp order). Afterwards the cache must be kept current — either
    by calling :meth:`apply` from the owner's own WM listener (the naive
    matcher does this so replay and live updates share one path) or by
    :meth:`attach`-ing the cache's own listener (the match pools do).

    ``alpha_tests`` are bumped once per WME per alpha pattern at prime time
    and on each relevant add — not per enumeration request — and carry no
    per-rule attribution: the memories are shared across rules, so there is
    no single rule to charge (see :mod:`repro.match.stats`).
    """

    def __init__(self, wm: WorkingMemory, stats: Optional[MatchStats] = None) -> None:
        self.wm = wm
        self.stats = stats
        self._mems: Dict[AlphaKey, IndexedMemory] = {}
        self._keys_by_class: Dict[str, List[AlphaKey]] = {}
        self._attached = False

    # -- enumerator protocol -------------------------------------------------

    def memory(self, ce: CompiledCE) -> IndexedMemory:
        key = ce.alpha_key
        mem = self._mems.get(key)
        if mem is None:
            mem = IndexedMemory()
            bucket = self.wm.by_class(ce.class_name)
            if not ce.alpha_conds:
                # Unconditional alpha pattern (the common case for scale
                # workloads): the memory is the class bucket verbatim, so
                # prime it in bulk instead of testing WMEs one at a time.
                if self.stats is not None:
                    self.stats.bump("alpha_tests", n=len(bucket))
                mem.bulk_add(bucket)
            else:
                for wme in bucket:
                    if self.stats is not None:
                        self.stats.bump("alpha_tests")
                    if alpha_test_passes(ce.alpha_conds, wme):
                        mem.add(wme)
            self._mems[key] = mem
            self._keys_by_class.setdefault(ce.class_name, []).append(key)
        return mem

    # -- maintenance ---------------------------------------------------------

    def apply(self, wme: WME, added: bool) -> None:
        """Incorporate one WM event into every already-primed memory.

        Memories not yet primed pick the WME up at prime time instead.
        """
        for key in self._keys_by_class.get(wme.class_name, ()):
            mem = self._mems[key]
            if added:
                if self.stats is not None:
                    self.stats.bump("alpha_tests")
                if alpha_test_passes(key[1], wme):
                    mem.add(wme)
            else:
                mem.remove(wme)

    def _listener(self, wme: WME, added: bool) -> None:
        self.apply(wme, added)

    def attach(self) -> None:
        """Subscribe to the working memory's add/remove events."""
        if not self._attached:
            self.wm.add_listener(self._listener)
            self._attached = True

    def detach(self) -> None:
        if self._attached:
            self.wm.remove_listener(self._listener)
            self._attached = False
