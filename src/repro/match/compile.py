"""Compilation of rule LHSs into a matcher-neutral form.

Every attribute test of a condition element falls into one of three buckets,
decided statically:

**Alpha tests** (WME-local, environment-free)
  constant equality, predicates against constants, disjunctions, and
  *intra-CE* variable consistency (the same variable used twice in one CE
  compiles to an attribute-vs-attribute comparison). Alpha tests form a
  hashable :class:`AlphaKey`, so identical patterns share one alpha memory
  across condition elements and rules in RETE/TREAT.

**Bindings**
  the first plain occurrence of each variable in a positive CE records
  ``(attr, var)``: matching extracts ``wme[attr]`` into the environment.

**Join tests** (environment-dependent)
  a variable occurrence whose binder is an *earlier* CE compiles to
  ``(attr, op, var)``: the candidate WME's attribute is compared against the
  token environment. Equality join tests additionally drive the hash
  indexes of RETE's join nodes and TREAT's seeded joins.

Compilation is strictly left-to-right over the CE list, mirroring OPS5:
a variable referenced by a predicate or a negated CE must already be bound
by an earlier (or textually earlier within the same) positive CE, otherwise
:class:`~repro.errors.MatchError` is raised.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.errors import MatchError
from repro.lang.ast import (
    ConditionElement,
    ConjunctiveTest,
    ConstantTest,
    DisjunctionTest,
    PredicateTest,
    Rule,
    Value,
    VariableTest,
)
from repro.wm.wme import WME

__all__ = [
    "AlphaKey",
    "CompiledCE",
    "CompiledRule",
    "JoinPlan",
    "compile_rule",
    "compile_rules",
    "alpha_test_passes",
    "value_predicate",
]


# ---------------------------------------------------------------------------
# Predicate evaluation
# ---------------------------------------------------------------------------


def _is_number(x: Value) -> bool:
    return isinstance(x, (int, float))


def value_predicate(op: str, a: Value, b: Value) -> bool:
    """Evaluate ``a op b`` with OPS5 semantics.

    Equality and inequality are exact (no numeric coercion across type
    except int/float, which Python already treats as equal when equal-valued).
    Ordering predicates require two numbers or two symbols (symbols compare
    lexicographically); mixed comparisons are simply false rather than an
    error, matching the forgiving behaviour rule programs rely on.
    ``<=>`` is the same-type predicate.
    """
    if op == "=":
        return a == b
    if op == "<>":
        return a != b
    if op == "<=>":
        return _is_number(a) == _is_number(b)
    # Ordering predicates.
    if _is_number(a) != _is_number(b):
        return False
    if op == "<":
        return a < b  # type: ignore[operator]
    if op == "<=":
        return a <= b  # type: ignore[operator]
    if op == ">":
        return a > b  # type: ignore[operator]
    if op == ">=":
        return a >= b  # type: ignore[operator]
    raise MatchError(f"unknown predicate {op!r}")


# ---------------------------------------------------------------------------
# Compiled condition elements
# ---------------------------------------------------------------------------

#: One WME-local test: ``('const', attr, op, value)``,
#: ``('in', attr, alternatives)`` or ``('intra', attr, op, other_attr)``.
AlphaCond = Tuple

#: Hashable identity of an alpha pattern: class name + sorted alpha conds.
AlphaKey = Tuple[str, Tuple[AlphaCond, ...]]


@dataclass(frozen=True)
class CompiledCE:
    """One compiled condition element."""

    class_name: str
    negated: bool
    #: WME-local conditions, sorted — part of the alpha key.
    alpha_conds: Tuple[AlphaCond, ...]
    #: ``(attr, var)`` pairs that extract new bindings (positive CEs only).
    bindings: Tuple[Tuple[str, str], ...]
    #: ``(attr, op, var)`` comparisons against earlier bindings; the ``=``
    #: subset drives hash joins.
    join_tests: Tuple[Tuple[str, str, str], ...]
    #: Position of this CE in the rule (0-based, counting negated CEs).
    index: int
    #: Extra WME-local conditions produced when the CE was re-classified for
    #: a :class:`JoinPlan` visit order (e.g. a join test that became an
    #: intra-CE comparison because its binder moved later). They are *not*
    #: part of :attr:`alpha_key` — the alpha memory is shared with the
    #: identity classification — and are applied as post-probe filters.
    local_conds: Tuple[AlphaCond, ...] = ()

    @property
    def alpha_key(self) -> AlphaKey:
        return (self.class_name, self.alpha_conds)

    @property
    def eq_join_tests(self) -> Tuple[Tuple[str, str], ...]:
        """``(attr, var)`` pairs from equality join tests — hash-join keys."""
        return tuple((a, v) for (a, op, v) in self.join_tests if op == "=")

    @property
    def other_join_tests(self) -> Tuple[Tuple[str, str, str], ...]:
        """Join tests that are not plain equality (filtered post-hash-probe)."""
        return tuple(t for t in self.join_tests if t[1] != "=")


def alpha_test_passes(conds: Sequence[AlphaCond], wme: WME) -> bool:
    """Evaluate a CE's WME-local conditions against one WME."""
    for cond in conds:
        kind = cond[0]
        if kind == "const":
            _k, attr, op, value = cond
            if not value_predicate(op, wme.get(attr), value):
                return False
        elif kind == "in":
            _k, attr, alternatives = cond
            if wme.get(attr) not in alternatives:
                return False
        else:  # 'intra'
            _k, attr, op, other = cond
            if not value_predicate(op, wme.get(attr), wme.get(other)):
                return False
    return True


@dataclass(frozen=True)
class JoinPlan:
    """A deterministic CE visit order for the join enumerator.

    ``order[p]`` is the *original* index of the CE visited at position ``p``;
    ``ces[p]`` is that CE re-classified for this visit order (bindings and
    join tests flip to match what is bound when it is reached). The alpha
    conds of each re-classified CE are pinned to the identity classification
    so alpha memories stay shared; order-induced extras live in
    :attr:`CompiledCE.local_conds`.

    Plans never change semantics: the enumerator restores the original CE
    positions in each instantiation and sorts results into the order the
    identity (left-to-right) enumeration would have produced.
    """

    #: Original CE indexes in visit order (a permutation of ``range(n)``).
    order: Tuple[int, ...]
    #: The re-classified CEs, one per visit position.
    ces: Tuple[CompiledCE, ...]


@dataclass(frozen=True)
class CompiledRule:
    """A rule plus its compiled condition elements.

    :attr:`ces` is always the identity (left-to-right) classification —
    matchers that key alpha memories or beta networks off it see exactly
    what they always did. :attr:`plan` and :attr:`seeded_plans` are
    optional join-order improvements the enumerator may use; they are
    derived data and excluded from equality.
    """

    rule: Rule
    ces: Tuple[CompiledCE, ...]
    #: Most-bound-first visit order for full enumeration (``None`` when the
    #: identity order is already the planned order).
    plan: Optional[JoinPlan] = field(default=None, compare=False, repr=False)
    #: Per-positive-CE plans that visit that CE first (or as early as its
    #: bindings allow) — used when the enumerator pins a CE to one WME
    #: (TREAT's delta seeding). Indexed by original CE index; ``None`` for
    #: negated CEs and where identity is already optimal.
    seeded_plans: Tuple[Optional[JoinPlan], ...] = field(
        default=(), compare=False, repr=False
    )

    @property
    def name(self) -> str:
        return self.rule.name

    def seeded_plan(self, index: int) -> Optional[JoinPlan]:
        """Plan for enumeration pinned at original CE ``index`` (or None)."""
        if 0 <= index < len(self.seeded_plans):
            return self.seeded_plans[index]
        return None

    @property
    def positive_ces(self) -> Tuple[CompiledCE, ...]:
        return tuple(ce for ce in self.ces if not ce.negated)

    @property
    def negative_ces(self) -> Tuple[CompiledCE, ...]:
        return tuple(ce for ce in self.ces if ce.negated)

    @property
    def variables(self) -> Tuple[str, ...]:
        """All bound variables, in binding order."""
        out: List[str] = []
        for ce in self.ces:
            for _attr, var in ce.bindings:
                if var not in out:
                    out.append(var)
        return tuple(out)

    def binder_map(self) -> Dict[str, Tuple[int, str]]:
        """var -> (0-based CE index, attribute) of its binding occurrence.

        The identity classification binds each variable exactly once (at
        its first plain occurrence in a positive CE); join tests elsewhere
        only *compare* against the binding. Symbolic analyses (the commute
        detector) use this to translate an action's variable reference back
        to the CE attribute it reads.
        """
        out: Dict[str, Tuple[int, str]] = {}
        for ce in self.ces:
            for attr, var in ce.bindings:
                if var not in out:
                    out[var] = (ce.index, attr)
        return out


# ---------------------------------------------------------------------------
# Compilation
# ---------------------------------------------------------------------------


def _flatten_test(test) -> List:
    if isinstance(test, ConjunctiveTest):
        return list(test.tests)
    return [test]


def _classify_ce(
    rule: Rule,
    idx: int,
    bound: Dict[str, Tuple[int, str]],
    pinned_alpha: Optional[Tuple[AlphaCond, ...]] = None,
) -> CompiledCE:
    """Classify condition element ``idx`` given the variables already bound.

    Mutates ``bound`` with this CE's new bindings (only on success — a
    :class:`~repro.errors.MatchError` leaves it untouched, so planners can
    probe eligibility with a throwaway copy).

    With ``pinned_alpha`` (the identity classification's alpha conds for
    this CE), the produced :attr:`~CompiledCE.alpha_conds` are pinned to it
    — keeping the alpha key, and thus the shared alpha memory, stable under
    re-ordering — and any order-induced extra conds are routed to
    :attr:`~CompiledCE.local_conds`. Identity conds the re-classification
    did not reproduce are implied by alpha-memory membership, so nothing is
    lost.
    """
    ce = rule.conditions[idx]
    alpha: List[AlphaCond] = []
    bindings: List[Tuple[str, str]] = []
    join_tests: List[Tuple[str, str, str]] = []
    bound_here: Dict[str, str] = {}  # var -> attr bound within this CE

    def resolve_var_test(attr: str, op: str, var: str) -> None:
        """Classify a variable occurrence with predicate ``op``."""
        if var in bound_here:
            if op == "=" and bound_here[var] == attr:
                return  # redundant self-comparison
            alpha.append(("intra", attr, op, bound_here[var]))
        elif var in bound:
            join_tests.append((attr, op, var))
        elif op == "=" and not ce.negated:
            bindings.append((attr, var))
            bound_here[var] = attr
        else:
            where = "negated condition" if ce.negated else "predicate"
            raise MatchError(
                f"rule {rule.name!r}, condition {idx + 1}: variable <{var}> "
                f"used in a {where} before being bound by an earlier "
                f"positive condition"
            )

    for attr, test in ce.tests:
        for atom in _flatten_test(test):
            if isinstance(atom, ConstantTest):
                alpha.append(("const", attr, "=", atom.value))
            elif isinstance(atom, DisjunctionTest):
                alpha.append(("in", attr, atom.alternatives))
            elif isinstance(atom, VariableTest):
                resolve_var_test(attr, "=", atom.name)
            elif isinstance(atom, PredicateTest):
                if isinstance(atom.operand, ConstantTest):
                    alpha.append(("const", attr, atom.predicate, atom.operand.value))
                else:
                    resolve_var_test(attr, atom.predicate, atom.operand.name)
            else:  # pragma: no cover - parser prevents this
                raise MatchError(f"unsupported test {atom!r}")

    for var, attr in bound_here.items():
        bound[var] = (idx, attr)

    if pinned_alpha is None:
        alpha_conds = tuple(sorted(alpha, key=repr))
        local_conds: Tuple[AlphaCond, ...] = ()
    else:
        alpha_conds = pinned_alpha
        known = set(pinned_alpha)
        local_conds = tuple(sorted((c for c in alpha if c not in known), key=repr))

    return CompiledCE(
        class_name=ce.class_name,
        negated=ce.negated,
        alpha_conds=alpha_conds,
        bindings=tuple(bindings),
        join_tests=tuple(join_tests),
        index=idx,
        local_conds=local_conds,
    )


# ---------------------------------------------------------------------------
# Join planning
# ---------------------------------------------------------------------------


def _tightness(identity_ce: CompiledCE, bound: Dict[str, Tuple[int, str]]) -> int:
    """How many of this CE's variable occurrences reference already-planned
    bindings — the 'most-bound-first' half of the planner's score."""
    t = sum(1 for _attr, var in identity_ce.bindings if var in bound)
    t += sum(1 for _attr, _op, var in identity_ce.join_tests if var in bound)
    return t


def _plan_rule(
    rule: Rule,
    identity: Tuple[CompiledCE, ...],
    pinned: Optional[int],
) -> Optional[JoinPlan]:
    """Greedy join plan: positive CEs most-bound-first (ties: more alpha
    conds as a selectivity proxy, then lowest original index), negated CEs
    floated to the earliest point all their variables are bound. With
    ``pinned``, that CE is visited first (or as early as its own variable
    uses allow) — the shape delta-seeded enumeration wants.

    Returns ``None`` when the chosen order is the identity order (no plan
    needed). Deterministic: a pure function of the rule.
    """
    n = len(identity)
    if n <= 1:
        return None
    by_idx = {ce.index: ce for ce in identity}
    remaining_pos = [ce.index for ce in identity if not ce.negated]
    remaining_neg = [ce.index for ce in identity if ce.negated]
    bound: Dict[str, Tuple[int, str]] = {}
    order: List[int] = []
    ces: List[CompiledCE] = []

    def try_place(idx: int) -> bool:
        trial = dict(bound)
        try:
            cce = _classify_ce(rule, idx, trial, pinned_alpha=by_idx[idx].alpha_conds)
        except MatchError:
            return False  # references a variable not yet bound in this order
        bound.clear()
        bound.update(trial)
        order.append(idx)
        ces.append(cce)
        return True

    def flush_negatives() -> None:
        progress = True
        while progress:
            progress = False
            for idx in list(remaining_neg):
                if try_place(idx):
                    remaining_neg.remove(idx)
                    progress = True

    if pinned is not None and try_place(pinned):
        remaining_pos.remove(pinned)
    flush_negatives()
    while remaining_pos:
        scored = sorted(
            remaining_pos,
            key=lambda idx: (
                _tightness(by_idx[idx], bound),
                len(by_idx[idx].alpha_conds),
                -idx,
            ),
            reverse=True,
        )
        if pinned is not None and pinned in remaining_pos:
            # Keep trying to front-load the pinned CE until it fits.
            scored.remove(pinned)
            scored.insert(0, pinned)
        for idx in scored:
            if try_place(idx):
                remaining_pos.remove(idx)
                break
        else:  # pragma: no cover - the lowest unplaced index always fits
            return None
        flush_negatives()

    if len(order) != n:  # pragma: no cover - negated CEs always place last
        return None
    if order == sorted(order):
        return None  # identity order: the plain classification suffices
    return JoinPlan(order=tuple(order), ces=tuple(ces))


def compile_rule(rule: Rule, plan: bool = True) -> CompiledRule:
    """Compile one rule's LHS; raises :class:`~repro.errors.MatchError` on
    binding-order violations (forward references, binding inside negation).

    With ``plan`` (the default), also derives the join plans the indexed
    enumerator uses; ``plan=False`` skips them (identity classification
    only, byte-identical to the historical compiler output).
    """
    bound: Dict[str, Tuple[int, str]] = {}  # var -> (ce index, attr) of binder
    compiled: List[CompiledCE] = []
    for idx in range(len(rule.conditions)):
        compiled.append(_classify_ce(rule, idx, bound))

    if compiled and compiled[0].negated:
        raise MatchError(f"rule {rule.name!r}: first condition element is negated")
    ces = tuple(compiled)
    join_plan: Optional[JoinPlan] = None
    seeded: Tuple[Optional[JoinPlan], ...] = ()
    if plan:
        join_plan = _plan_rule(rule, ces, None)
        seeded = tuple(
            _plan_rule(rule, ces, ce.index) if not ce.negated else None
            for ce in ces
        )
    return CompiledRule(rule=rule, ces=ces, plan=join_plan, seeded_plans=seeded)


def compile_rules(rules: Sequence[Rule]) -> Tuple[CompiledRule, ...]:
    """Compile a sequence of rules, preserving order."""
    return tuple(compile_rule(r) for r in rules)
