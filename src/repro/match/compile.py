"""Compilation of rule LHSs into a matcher-neutral form.

Every attribute test of a condition element falls into one of three buckets,
decided statically:

**Alpha tests** (WME-local, environment-free)
  constant equality, predicates against constants, disjunctions, and
  *intra-CE* variable consistency (the same variable used twice in one CE
  compiles to an attribute-vs-attribute comparison). Alpha tests form a
  hashable :class:`AlphaKey`, so identical patterns share one alpha memory
  across condition elements and rules in RETE/TREAT.

**Bindings**
  the first plain occurrence of each variable in a positive CE records
  ``(attr, var)``: matching extracts ``wme[attr]`` into the environment.

**Join tests** (environment-dependent)
  a variable occurrence whose binder is an *earlier* CE compiles to
  ``(attr, op, var)``: the candidate WME's attribute is compared against the
  token environment. Equality join tests additionally drive the hash
  indexes of RETE's join nodes and TREAT's seeded joins.

Compilation is strictly left-to-right over the CE list, mirroring OPS5:
a variable referenced by a predicate or a negated CE must already be bound
by an earlier (or textually earlier within the same) positive CE, otherwise
:class:`~repro.errors.MatchError` is raised.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.errors import MatchError
from repro.lang.ast import (
    ConditionElement,
    ConjunctiveTest,
    ConstantTest,
    DisjunctionTest,
    PredicateTest,
    Rule,
    Value,
    VariableTest,
)
from repro.wm.wme import WME

__all__ = [
    "AlphaKey",
    "CompiledCE",
    "CompiledRule",
    "compile_rule",
    "compile_rules",
    "alpha_test_passes",
    "value_predicate",
]


# ---------------------------------------------------------------------------
# Predicate evaluation
# ---------------------------------------------------------------------------


def _is_number(x: Value) -> bool:
    return isinstance(x, (int, float))


def value_predicate(op: str, a: Value, b: Value) -> bool:
    """Evaluate ``a op b`` with OPS5 semantics.

    Equality and inequality are exact (no numeric coercion across type
    except int/float, which Python already treats as equal when equal-valued).
    Ordering predicates require two numbers or two symbols (symbols compare
    lexicographically); mixed comparisons are simply false rather than an
    error, matching the forgiving behaviour rule programs rely on.
    ``<=>`` is the same-type predicate.
    """
    if op == "=":
        return a == b
    if op == "<>":
        return a != b
    if op == "<=>":
        return _is_number(a) == _is_number(b)
    # Ordering predicates.
    if _is_number(a) != _is_number(b):
        return False
    if op == "<":
        return a < b  # type: ignore[operator]
    if op == "<=":
        return a <= b  # type: ignore[operator]
    if op == ">":
        return a > b  # type: ignore[operator]
    if op == ">=":
        return a >= b  # type: ignore[operator]
    raise MatchError(f"unknown predicate {op!r}")


# ---------------------------------------------------------------------------
# Compiled condition elements
# ---------------------------------------------------------------------------

#: One WME-local test: ``('const', attr, op, value)``,
#: ``('in', attr, alternatives)`` or ``('intra', attr, op, other_attr)``.
AlphaCond = Tuple

#: Hashable identity of an alpha pattern: class name + sorted alpha conds.
AlphaKey = Tuple[str, Tuple[AlphaCond, ...]]


@dataclass(frozen=True)
class CompiledCE:
    """One compiled condition element."""

    class_name: str
    negated: bool
    #: WME-local conditions, sorted — part of the alpha key.
    alpha_conds: Tuple[AlphaCond, ...]
    #: ``(attr, var)`` pairs that extract new bindings (positive CEs only).
    bindings: Tuple[Tuple[str, str], ...]
    #: ``(attr, op, var)`` comparisons against earlier bindings; the ``=``
    #: subset drives hash joins.
    join_tests: Tuple[Tuple[str, str, str], ...]
    #: Position of this CE in the rule (0-based, counting negated CEs).
    index: int

    @property
    def alpha_key(self) -> AlphaKey:
        return (self.class_name, self.alpha_conds)

    @property
    def eq_join_tests(self) -> Tuple[Tuple[str, str], ...]:
        """``(attr, var)`` pairs from equality join tests — hash-join keys."""
        return tuple((a, v) for (a, op, v) in self.join_tests if op == "=")

    @property
    def other_join_tests(self) -> Tuple[Tuple[str, str, str], ...]:
        """Join tests that are not plain equality (filtered post-hash-probe)."""
        return tuple(t for t in self.join_tests if t[1] != "=")


def alpha_test_passes(conds: Sequence[AlphaCond], wme: WME) -> bool:
    """Evaluate a CE's WME-local conditions against one WME."""
    for cond in conds:
        kind = cond[0]
        if kind == "const":
            _k, attr, op, value = cond
            if not value_predicate(op, wme.get(attr), value):
                return False
        elif kind == "in":
            _k, attr, alternatives = cond
            if wme.get(attr) not in alternatives:
                return False
        else:  # 'intra'
            _k, attr, op, other = cond
            if not value_predicate(op, wme.get(attr), wme.get(other)):
                return False
    return True


@dataclass(frozen=True)
class CompiledRule:
    """A rule plus its compiled condition elements."""

    rule: Rule
    ces: Tuple[CompiledCE, ...]

    @property
    def name(self) -> str:
        return self.rule.name

    @property
    def positive_ces(self) -> Tuple[CompiledCE, ...]:
        return tuple(ce for ce in self.ces if not ce.negated)

    @property
    def negative_ces(self) -> Tuple[CompiledCE, ...]:
        return tuple(ce for ce in self.ces if ce.negated)

    @property
    def variables(self) -> Tuple[str, ...]:
        """All bound variables, in binding order."""
        out: List[str] = []
        for ce in self.ces:
            for _attr, var in ce.bindings:
                if var not in out:
                    out.append(var)
        return tuple(out)


# ---------------------------------------------------------------------------
# Compilation
# ---------------------------------------------------------------------------


def _flatten_test(test) -> List:
    if isinstance(test, ConjunctiveTest):
        return list(test.tests)
    return [test]


def compile_rule(rule: Rule) -> CompiledRule:
    """Compile one rule's LHS; raises :class:`~repro.errors.MatchError` on
    binding-order violations (forward references, binding inside negation)."""
    bound: Dict[str, Tuple[int, str]] = {}  # var -> (ce index, attr) of binder
    compiled: List[CompiledCE] = []

    for idx, ce in enumerate(rule.conditions):
        alpha: List[AlphaCond] = []
        bindings: List[Tuple[str, str]] = []
        join_tests: List[Tuple[str, str, str]] = []
        bound_here: Dict[str, str] = {}  # var -> attr bound within this CE

        def resolve_var_test(attr: str, op: str, var: str) -> None:
            """Classify a variable occurrence with predicate ``op``."""
            if var in bound_here:
                if op == "=" and bound_here[var] == attr:
                    return  # redundant self-comparison
                alpha.append(("intra", attr, op, bound_here[var]))
            elif var in bound:
                join_tests.append((attr, op, var))
            elif op == "=" and not ce.negated:
                bindings.append((attr, var))
                bound_here[var] = attr
            else:
                where = "negated condition" if ce.negated else "predicate"
                raise MatchError(
                    f"rule {rule.name!r}, condition {idx + 1}: variable <{var}> "
                    f"used in a {where} before being bound by an earlier "
                    f"positive condition"
                )

        for attr, test in ce.tests:
            for atom in _flatten_test(test):
                if isinstance(atom, ConstantTest):
                    alpha.append(("const", attr, "=", atom.value))
                elif isinstance(atom, DisjunctionTest):
                    alpha.append(("in", attr, atom.alternatives))
                elif isinstance(atom, VariableTest):
                    resolve_var_test(attr, "=", atom.name)
                elif isinstance(atom, PredicateTest):
                    if isinstance(atom.operand, ConstantTest):
                        alpha.append(("const", attr, atom.predicate, atom.operand.value))
                    else:
                        resolve_var_test(attr, atom.predicate, atom.operand.name)
                else:  # pragma: no cover - parser prevents this
                    raise MatchError(f"unsupported test {atom!r}")

        for var, attr in bound_here.items():
            bound[var] = (idx, attr)

        compiled.append(
            CompiledCE(
                class_name=ce.class_name,
                negated=ce.negated,
                alpha_conds=tuple(sorted(alpha, key=repr)),
                bindings=tuple(bindings),
                join_tests=tuple(join_tests),
                index=idx,
            )
        )

    if compiled and compiled[0].negated:
        raise MatchError(f"rule {rule.name!r}: first condition element is negated")
    return CompiledRule(rule=rule, ces=tuple(compiled))


def compile_rules(rules: Sequence[Rule]) -> Tuple[CompiledRule, ...]:
    """Compile a sequence of rules, preserving order."""
    return tuple(compile_rule(r) for r in rules)
