"""Content-level diffs between working memories.

Timestamps are run state, so comparisons use each WME's
:meth:`~repro.wm.wme.WME.content_key` with multiplicity: two same-content
WMEs count twice. Useful for "what did this cycle actually change" tooling
and for tests comparing engines that assign different timestamps.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Iterable, List, Tuple

from repro.wm.memory import WorkingMemory
from repro.wm.wme import WME

__all__ = ["WMDiff", "diff_wm"]


def _content_counts(wmes: Iterable[WME]) -> Counter:
    return Counter(w.content_key() for w in wmes)


@dataclass
class WMDiff:
    """Multiset difference between two memories (``before`` → ``after``)."""

    #: Content keys present more often in ``after`` (with multiplicity).
    added: List[tuple] = field(default_factory=list)
    #: Content keys present more often in ``before``.
    removed: List[tuple] = field(default_factory=list)

    @property
    def unchanged(self) -> bool:
        return not self.added and not self.removed

    def summary(self) -> str:
        if self.unchanged:
            return "working memories are content-identical"
        lines = []
        for class_name, attrs in sorted(self.removed):
            inner = " ".join(f"^{a} {v!r}" for a, v in attrs)
            lines.append(f"- ({class_name} {inner})".rstrip())
        for class_name, attrs in sorted(self.added):
            inner = " ".join(f"^{a} {v!r}" for a, v in attrs)
            lines.append(f"+ ({class_name} {inner})".rstrip())
        return "\n".join(lines)


def diff_wm(before: WorkingMemory, after: WorkingMemory) -> WMDiff:
    """Content diff with multiplicity (duplicate contents counted)."""
    b = _content_counts(before)
    a = _content_counts(after)
    diff = WMDiff()
    for key, n in sorted((a - b).items()):
        diff.added.extend([key] * n)
    for key, n in sorted((b - a).items()):
        diff.removed.extend([key] * n)
    return diff
