"""Developer tooling on top of the core library.

- :mod:`repro.tools.dot` — Graphviz DOT export of RETE networks and
  provenance (derivation) graphs; pure text, no graphviz dependency;
- :mod:`repro.tools.diff` — content-level diffs between working memories
  (what a cycle/run added and removed, ignoring timestamps).
"""

from repro.tools.diff import WMDiff, diff_wm
from repro.tools.dot import provenance_to_dot, rete_to_dot
from repro.tools.lint import (
    find_interference_candidates,
    lint_program,
    suggest_meta_rules,
)
from repro.tools.trace import RunTracer

__all__ = [
    "RunTracer",
    "WMDiff",
    "diff_wm",
    "find_interference_candidates",
    "lint_program",
    "provenance_to_dot",
    "rete_to_dot",
    "suggest_meta_rules",
]
