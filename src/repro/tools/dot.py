"""Graphviz DOT export: RETE networks and derivation graphs.

Pure text generation — paste the output into any Graphviz renderer.
``rete_to_dot`` shows the compiled network topology (alpha memories with
their patterns and live sizes, join/negative nodes per rule chain,
production leaves); ``provenance_to_dot`` draws a WME's derivation DAG as
recorded by :class:`~repro.core.provenance.ProvenanceTracker`.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from repro.core.provenance import ProvenanceTracker
from repro.match.rete import ReteMatcher
from repro.match.rete.nodes import JoinBetaNode, NegativeNode, ProductionNode
from repro.wm.wme import WME

__all__ = ["rete_to_dot", "provenance_to_dot"]


def _esc(text: str) -> str:
    return text.replace("\\", "\\\\").replace('"', '\\"')


def _alpha_label(key) -> str:
    class_name, conds = key
    parts = [class_name]
    for cond in conds:
        if cond[0] == "const":
            _k, attr, op, value = cond
            parts.append(f"^{attr} {op} {value!r}" if op != "=" else f"^{attr} {value!r}")
        elif cond[0] == "in":
            _k, attr, alts = cond
            parts.append(f"^{attr} in {list(alts)!r}")
        else:
            _k, attr, op, other = cond
            parts.append(f"^{attr} {op} ^{other}")
    return "\\n".join(_esc(p) for p in parts)


def rete_to_dot(matcher: ReteMatcher, include_sizes: bool = True) -> str:
    """Render a RETE matcher's network as a DOT digraph."""
    lines: List[str] = [
        "digraph rete {",
        "  rankdir=TB;",
        '  node [fontname="monospace", fontsize=10];',
    ]
    node_ids: Dict[int, str] = {}

    # Alpha memories.
    for i, (key, mem) in enumerate(matcher._alpha.items()):
        nid = f"alpha{i}"
        size = f"\\n[{len(mem)} wmes]" if include_sizes else ""
        lines.append(
            f'  {nid} [shape=box, style=filled, fillcolor=lightyellow, '
            f'label="{_alpha_label(key)}{size}"];'
        )
        node_ids[id(mem)] = nid

    # Beta chains: walk every alpha memory's successors, then chain children.
    counter = 0
    seen: Set[int] = set()

    def visit(node) -> str:
        nonlocal counter
        if id(node) in node_ids:
            return node_ids[id(node)]
        counter += 1
        nid = f"beta{counter}"
        node_ids[id(node)] = nid
        if isinstance(node, ProductionNode):
            lines.append(
                f'  {nid} [shape=doubleoctagon, style=filled, '
                f'fillcolor=lightblue, label="{_esc(node.rule.name)}"];'
            )
        elif isinstance(node, NegativeNode):
            size = f"\\n[{len(node.tokens)} passing]" if include_sizes else ""
            lines.append(
                f'  {nid} [shape=ellipse, style=filled, fillcolor=mistyrose, '
                f'label="NOT ce{node.ce.index + 1} ({_esc(node.rule_name)}){size}"];'
            )
        else:
            size = f"\\n[{len(node.tokens)} tokens]" if include_sizes else ""
            lines.append(
                f'  {nid} [shape=ellipse, label="join ce{node.ce.index + 1} '
                f'({_esc(node.rule_name)}){size}"];'
            )
        return nid

    def walk(node, prev_id):
        if (id(node), prev_id) in seen:
            return
        seen.add((id(node), prev_id))
        nid = visit(node)
        if prev_id is not None:
            lines.append(f"  {prev_id} -> {nid};")
        if isinstance(node, (JoinBetaNode, NegativeNode)):
            edge = f"  {node_ids[id(node.alpha)]} -> {nid} [style=dashed];"
            if edge not in lines:
                lines.append(edge)
        for child in getattr(node, "children", ()):
            walk(child, nid)

    for mem in matcher._alpha.values():
        for node in mem.successors:
            walk(node, None)
    lines.append("}")
    return "\n".join(lines)


def provenance_to_dot(
    tracker: ProvenanceTracker, root: WME, max_depth: int = 12
) -> str:
    """Render the derivation DAG of ``root`` as a DOT digraph.

    WMEs are boxes (grey when retired); edges point from parents (support)
    to the derived element, labelled with the deriving rule.
    """
    lines: List[str] = [
        "digraph provenance {",
        "  rankdir=BT;",
        '  node [shape=box, fontname="monospace", fontsize=10];',
    ]
    ids: Dict[WME, str] = {}
    emitted_edges: Set[tuple] = set()

    def node_id(wme: WME) -> str:
        if wme not in ids:
            ids[wme] = f"w{len(ids)}"
            retired = tracker.is_retired(wme)
            fill = ", style=filled, fillcolor=lightgrey" if retired else ""
            lines.append(f'  {ids[wme]} [label="{_esc(repr(wme))}"{fill}];')
        return ids[wme]

    def walk(wme: WME, depth: int) -> None:
        nid = node_id(wme)
        if depth >= max_depth:
            return
        record = tracker.derivation(wme)
        if record is None:
            return
        supports = list(record.parents)
        if record.replaced is not None:
            supports.append(record.replaced)
        for parent in supports:
            pid = node_id(parent)
            label = record.rule or ""
            edge = (pid, nid, label)
            if edge not in emitted_edges:
                emitted_edges.add(edge)
                style = (
                    f' [label="{_esc(label)}"]' if label else ""
                )
                lines.append(f"  {pid} -> {nid}{style};")
            walk(parent, depth + 1)

    walk(root, 0)
    lines.append("}")
    return "\n".join(lines)
