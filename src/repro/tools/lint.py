"""Porting lint: static interference analysis for set-oriented firing.

An OPS5 program ported to PARULEL changes semantics: *all* instantiations
fire per cycle, so two firings that ``modify``/``remove`` the same WME —
perfectly fine sequentially — now interfere. This linter finds the rule
pairs that *could* do that and drafts the meta-rule skeletons a programmer
would write to arbitrate them, mirroring the porting workflow PARULEL's
authors describe (take an OPS5 program, add redaction meta-rules).

Analysis (static, conservative):

1. For every rule, collect its **write targets**: the (CE index, class,
   compiled alpha pattern) of each ``modify``/``remove`` target CE.
   ``make`` never interferes (with dedupe it is set insertion).
2. Two write targets **may alias** when their classes match and their
   constant equality tests do not contradict (same attribute forced to two
   different constants ⇒ provably disjoint).
3. A pair of rules (including a rule with itself) with aliasing write
   targets is an **interference candidate** — unless it is a rule whose
   only positive CE is the written one (two instantiations of such a rule
   necessarily matched different WMEs, so they cannot collide).

False positives are expected (that is what makes it a lint, not a
verifier): the dynamic check remains the engine's interference detection.
The point is the worklist: every InterferenceError raised at runtime is
guaranteed to correspond to a reported candidate pair (tests assert this
on the bundled workloads).
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro.lang.ast import MetaRule, ModifyAction, Program, RemoveAction, Rule
from repro.match.compile import CompiledCE, compile_rule

__all__ = [
    "InterferenceCandidate",
    "find_interference_candidates",
    "meta_rule_skeleton",
    "suggest_meta_rules",
    "lint_diagnostics",
    "lint_program",
    "lint_paths",
]


@dataclass(frozen=True)
class InterferenceCandidate:
    """Two rules that may issue conflicting writes to one WME."""

    rule_a: str
    rule_b: str  # == rule_a for self-interference
    class_name: str
    #: 1-based CE indices of the written condition elements.
    ce_a: int
    ce_b: int
    #: 'modify/modify', 'modify/remove' or 'remove/remove'.
    kind: str

    def describe(self) -> str:
        who = (
            f"two instantiations of {self.rule_a!r}"
            if self.rule_a == self.rule_b
            else f"{self.rule_a!r} and {self.rule_b!r}"
        )
        return (
            f"{who} may {self.kind} the same {self.class_name!r} WME "
            f"(CE {self.ce_a} vs CE {self.ce_b})"
        )


def _write_targets(rule: Rule) -> List[Tuple[int, CompiledCE, str]]:
    """(ce_index, compiled CE, 'modify'|'remove') for each written CE."""
    compiled = compile_rule(rule)
    out = []
    for action in rule.actions:
        if isinstance(action, ModifyAction):
            out.append((action.ce_index, compiled.ces[action.ce_index - 1], "modify"))
        elif isinstance(action, RemoveAction):
            for idx in action.ce_indices:
                out.append((idx, compiled.ces[idx - 1], "remove"))
    return out


def _may_alias(a: CompiledCE, b: CompiledCE) -> bool:
    """Could one WME match both compiled CEs? (conservative)

    ``False`` only on proof: class mismatch, or a shared attribute whose
    combined alpha constraints — constant equality, ``<< … >>`` membership
    alternatives, numeric predicate ranges — no single value can satisfy.
    Copy-and-constrain siblings partitioned on disjoint membership sets
    therefore stop aliasing, while anything unprovable stays a candidate
    (runtime interference errors remain a subset of the lint's worklist).
    """
    if a.class_name != b.class_name:
        return False
    from repro.analysis.footprint import ce_constraints, constraints_satisfiable

    conds_a = ce_constraints(a)
    conds_b = ce_constraints(b)
    for attr, ca in conds_a.items():
        cb = conds_b.get(attr)
        if cb is None:
            continue
        if not constraints_satisfiable(list(ca) + list(cb)):
            return False  # provably disjoint
    return True


def _single_ce_self_safe(rule: Rule, ce_index: int) -> bool:
    """A self-pair is safe when the written CE is the rule's only positive
    CE: two instantiations then matched two different WMEs there."""
    positives = [i + 1 for i, ce in enumerate(rule.conditions) if not ce.negated]
    return positives == [ce_index]


def find_interference_candidates(program: Program) -> List[InterferenceCandidate]:
    """All rule pairs whose writes may collide under parallel firing."""
    targets = {rule.name: (_write_targets(rule), rule) for rule in program.rules}
    names = [r.name for r in program.rules]
    out: List[InterferenceCandidate] = []
    for i, name_a in enumerate(names):
        writes_a, rule_a = targets[name_a]
        for name_b in names[i:]:
            writes_b, rule_b = targets[name_b]
            for idx_a, ce_a, kind_a in writes_a:
                for idx_b, ce_b, kind_b in writes_b:
                    if name_a == name_b and idx_b < idx_a:
                        continue  # unordered within a rule
                    if not _may_alias(ce_a, ce_b):
                        continue
                    if name_a == name_b and idx_a == idx_b:
                        if _single_ce_self_safe(rule_a, idx_a):
                            continue
                    kind = "/".join(sorted((kind_a, kind_b)))
                    out.append(
                        InterferenceCandidate(
                            rule_a=name_a,
                            rule_b=name_b,
                            class_name=ce_a.class_name,
                            ce_a=idx_a,
                            ce_b=idx_b,
                            kind=kind,
                        )
                    )
    # Dedupe (same pair can be reached via several action combinations).
    seen: Set[InterferenceCandidate] = set()
    unique = []
    for cand in out:
        if cand not in seen:
            seen.add(cand)
            unique.append(cand)
    return unique


def _binding_vars(rule: Rule, ce_index: int) -> List[str]:
    compiled = compile_rule(rule)
    ce = compiled.ces[ce_index - 1]
    vars_ = [var for _attr, var in ce.bindings]
    vars_.extend(var for _attr, _op, var in ce.join_tests)
    return sorted(set(vars_))


def meta_rule_skeleton(
    program: Program, candidate: InterferenceCandidate, name: Optional[str] = None
) -> str:
    """Draft the ``mp`` skeleton arbitrating one interference candidate.

    The skeleton compiles and runs (it arbitrates by instantiation id),
    but the leading comments tell the programmer which bindings identify
    the contended WME so the rule can be narrowed from "serialize these
    rules" to "serialize only true collisions".
    """
    rule_a = program.rule(candidate.rule_a)
    vars_a = _binding_vars(rule_a, candidate.ce_a)
    note = (
        f"; NOTE: narrow by equating the bindings that identify the "
        f"contended {candidate.class_name!r} WME (rule {candidate.rule_a!r} CE "
        f"{candidate.ce_a} binds: "
        f"{', '.join('<' + v + '>' for v in vars_a) or 'none'})"
    )
    if name is None:
        name = (
            f"arbitrate-{candidate.rule_a}"
            if candidate.rule_a == candidate.rule_b
            else f"arbitrate-{candidate.rule_a}-{candidate.rule_b}"
        )
    return (
        f"; {candidate.describe()}\n"
        f"{note}\n"
        f"(mp {name}\n"
        f"    (instantiation ^rule {candidate.rule_a} ^id <i>)\n"
        f"    (instantiation ^rule {candidate.rule_b} ^id {{<j> > <i>}})\n"
        f"    -->\n"
        f"    (redact <j>))"
    )


def _skeleton_names(candidates: Sequence[InterferenceCandidate]) -> List[str]:
    """Unique ``mp`` names, one per candidate, in candidate order."""
    names = []
    used: Dict[str, int] = {}
    for cand in candidates:
        name = (
            f"arbitrate-{cand.rule_a}"
            if cand.rule_a == cand.rule_b
            else f"arbitrate-{cand.rule_a}-{cand.rule_b}"
        )
        n = used.get(name, 0)
        used[name] = n + 1
        if n:
            name = f"{name}-{n + 1}"  # rule names must be unique
        names.append(name)
    return names


def suggest_meta_rules(program: Program) -> List[str]:
    """Draft one ``mp`` skeleton per interference candidate."""
    candidates = find_interference_candidates(program)
    names = _skeleton_names(candidates)
    return [
        meta_rule_skeleton(program, cand, name)
        for cand, name in zip(candidates, names)
    ]


def lint_diagnostics(program: Program) -> List["Diagnostic"]:
    """The lint's findings as ``PA001`` diagnostics (skeletons as hints)."""
    from repro.analysis.diagnostics import diag

    candidates = find_interference_candidates(program)
    names = _skeleton_names(candidates)
    return [
        diag(
            "PA001",
            cand.describe(),
            rule=cand.rule_a,
            ce=cand.ce_a,
            # The skeleton's first line repeats describe(); the message
            # already carries it.
            hint="\n".join(
                meta_rule_skeleton(program, cand, name).splitlines()[1:]
            ),
        )
        for cand, name in zip(candidates, names)
    ]


def lint_program(program: Program, show_hints: bool = True) -> str:
    """Human-readable lint report (empty string when clean)."""
    from repro.analysis.diagnostics import render_text

    diagnostics = lint_diagnostics(program)
    if not diagnostics:
        return ""
    existing = len(program.meta_rules)
    lines = [
        f"{len(diagnostics)} potential parallel-firing interference(s):",
        (
            f"({existing} meta-rule(s) present — run 'parulel analyze' to "
            f"check they cover these)"
            if existing
            else "(no meta-rules present; suggested skeletons below)"
        ),
        render_text(diagnostics, show_hints=show_hints),
    ]
    return "\n".join(lines)


def lint_paths(
    paths: Sequence[str], emit: Callable[[str], None] = print
) -> int:
    """Lint program files; the shared engine of ``parulel lint`` and
    ``python -m repro.tools.lint``.

    Exit codes: 0 clean, 2 a file failed to parse or analyze, 3 candidates
    were found (a lint finding, distinct from hard errors).
    """
    from repro.errors import ReproError
    from repro.lang import analyze_program, parse_program

    worst = 0
    for path in paths:
        try:
            program = parse_program(Path(path).read_text(encoding="utf-8"))
            analyze_program(program)
        except (OSError, ReproError) as exc:
            emit(f"== {path}: error: {exc}")
            worst = 2
            continue
        report = lint_program(program)
        if report:
            emit(f"== {path}")
            emit(report)
            if worst != 2:
                worst = 3
        else:
            emit(f"== {path}: clean")
    return worst


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Module entry point (``python -m repro.tools.lint``).

    With file arguments, lint those programs (exit 3 when candidates are
    found, as ``parulel lint`` does; exit 2 on parse/semantic errors). With
    no arguments, lint every bundled benchmark program as a smoke gate:
    candidates are expected and merely reported; only a crash or parse
    failure fails the gate.
    """
    import argparse
    import sys

    parser = argparse.ArgumentParser(
        prog="python -m repro.tools.lint",
        description="static interference lint for set-oriented firing",
    )
    parser.add_argument("programs", nargs="*", help=".pl files (default: bundled workloads)")
    args = parser.parse_args(argv)

    if args.programs:
        return lint_paths(args.programs)

    from repro.programs import REGISTRY

    for name in sorted(REGISTRY):
        workload = REGISTRY[name]()
        candidates = find_interference_candidates(workload.program)
        note = (
            f"{len(candidates)} candidate(s), "
            f"{workload.n_meta_rules} meta-rule(s)"
            if candidates
            else "clean"
        )
        print(f"lint {name}: {note}")
    return 0


if __name__ == "__main__":
    import sys

    sys.exit(main())
