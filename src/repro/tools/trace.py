"""Structured run tracing: capture every cycle, render a timeline.

:class:`RunTracer` plugs into :class:`~repro.core.engine.ParulelEngine`'s
``trace`` callback, records each :class:`~repro.core.engine.CycleReport`,
and renders either a compact per-cycle timeline or a CSV-able table —
the "what did this run do" artifact for debugging rule programs::

    tracer = RunTracer()
    engine = ParulelEngine(program, trace=tracer)
    engine.run()
    print(tracer.timeline())

Timeline sample::

    cycle  CS  cand  redact  fire  -wm  +wm  notes
        1  12    12       3     9    0    9
        2  15     6       0     6    6    6   writes:2
        3   4     1       0     1    0    0   halt
"""

from __future__ import annotations

from typing import List, Optional

from repro.core.engine import CycleReport
from repro.metrics.report import Table

__all__ = ["RunTracer"]


class RunTracer:
    """Callable trace sink with rendering helpers."""

    def __init__(self, keep_writes: bool = True) -> None:
        self.reports: List[CycleReport] = []
        self.keep_writes = keep_writes

    def __call__(self, report: CycleReport) -> None:
        self.reports.append(report)

    # -- queries ------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.reports)

    @property
    def total_fired(self) -> int:
        return sum(r.fired for r in self.reports)

    @property
    def total_redacted(self) -> int:
        return sum(r.redaction.redacted for r in self.reports)

    def busiest_cycle(self) -> Optional[CycleReport]:
        if not self.reports:
            return None
        return max(self.reports, key=lambda r: r.fired)

    # -- rendering ------------------------------------------------------------

    def timeline(self) -> str:
        """Fixed-width per-cycle timeline."""
        table = Table(
            "run timeline",
            ["cycle", "CS", "cand", "redact", "fire", "-wm", "+wm", "notes"],
        )
        for r in self.reports:
            notes = []
            if r.writes and self.keep_writes:
                notes.append(f"writes:{len(r.writes)}")
            if r.conflicts_resolved:
                notes.append(f"conflicts:{r.conflicts_resolved}")
            if r.makes_deduped:
                notes.append(f"deduped:{r.makes_deduped}")
            if r.halted:
                notes.append("halt")
            table.add(
                r.cycle,
                r.conflict_set_size,
                r.candidates,
                r.redaction.redacted,
                r.fired,
                r.delta_removes,
                r.delta_makes,
                " ".join(notes),
            )
        return str(table)

    def to_table(self) -> Table:
        """The timeline as a :class:`~repro.metrics.report.Table` (for CSV)."""
        table = Table(
            "run timeline",
            ["cycle", "conflict_set", "candidates", "redacted", "fired",
             "removes", "makes", "halted"],
        )
        for r in self.reports:
            table.add(
                r.cycle,
                r.conflict_set_size,
                r.candidates,
                r.redaction.redacted,
                r.fired,
                r.delta_removes,
                r.delta_makes,
                int(r.halted),
            )
        return table
